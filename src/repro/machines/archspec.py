"""Named architecture specifications.

Each :class:`ArchitectureSpec` parameterises the synthetic cost model with
per-term throughput rates (elements per second) chosen so that the synthetic
times land in the same regimes the paper reports for that device -- e.g. a
GTX Titan Black tracing a few hundred million rays per second against a CPU
tracing tens of millions, or a K40m shading roughly an order of magnitude
faster than a 16-core Sandy Bridge node.  The absolute values matter far less
than the ratios: the performance-model methodology fits coefficients per
architecture, so all that must be preserved is which terms dominate and how
the devices compare.

``cpu-host`` is the architecture whose renders are actually *measured* (the
numpy renderers running on the machine executing the study); it has no
synthetic rates.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ArchitectureSpec", "get_architecture", "list_architectures", "register_architecture"]


@dataclass(frozen=True)
class ArchitectureSpec:
    """Throughput description of one device.

    Rates are in "elements per second" for the corresponding model term:

    Attributes
    ----------
    build_rate:
        BVH-build objects per second (the ``c0 * O`` term of Eq. 5.1).
    traversal_rate:
        Ray-traversal work units (active pixels x log2 objects) per second.
    shade_rate:
        Shaded pixels per second.
    cull_rate:
        Triangles culled per second (rasterizer ``c0 * O`` term).
    raster_rate:
        Candidate pixels (VO x PPT) per second.
    cell_rate:
        Volume cell lookups (AP x CS) per second.
    sample_rate:
        Volume samples (AP x SPR) per second.
    kernel_overhead_seconds:
        Fixed overhead per pipeline phase (kernel launches, API latency).
    noise_sigma:
        Log-normal sigma applied multiplicatively to synthesized phase times.
    """

    name: str
    kind: str  # "cpu", "gpu", or "mic"
    build_rate: float
    traversal_rate: float
    shade_rate: float
    cull_rate: float
    raster_rate: float
    cell_rate: float
    sample_rate: float
    kernel_overhead_seconds: float = 1e-4
    noise_sigma: float = 0.06
    description: str = ""

    def __post_init__(self) -> None:
        for field_name in (
            "build_rate",
            "traversal_rate",
            "shade_rate",
            "cull_rate",
            "raster_rate",
            "cell_rate",
            "sample_rate",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


_REGISTRY: dict[str, ArchitectureSpec] = {}


def register_architecture(spec: ArchitectureSpec) -> None:
    """Add (or replace) an architecture in the registry."""
    _REGISTRY[spec.name] = spec


def get_architecture(name: str) -> ArchitectureSpec:
    """Look up a named architecture."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown architecture {name!r}; known: {sorted(_REGISTRY)}") from None


def list_architectures() -> list[str]:
    """Names of all registered architectures."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# The study's devices.  Rates are tuned so full-scale inputs (1080p images,
# millions of triangles) land near the paper's reported frame rates, and so
# the CPU/GPU orderings of Tables 1-8 hold.
# ---------------------------------------------------------------------------

register_architecture(
    ArchitectureSpec(
        name="cpu1-surface",
        kind="cpu",
        description="LLNL Surface node: 2x Intel Xeon E5-2670 (Sandy Bridge), 16 threads",
        # Rates are the reciprocals of the paper's Table 17 CPU1 coefficients.
        build_rate=1.86e7,
        traversal_rate=5.4e8,
        shade_rate=2.9e7,
        cull_rate=7.8e7,
        raster_rate=5.1e8,
        cell_rate=2.7e9,
        sample_rate=2.2e8,
        kernel_overhead_seconds=5e-5,
        noise_sigma=0.08,
    )
)

register_architecture(
    ArchitectureSpec(
        name="gpu1-k40m",
        kind="gpu",
        description="NVIDIA Tesla K40m (LLNL Surface)",
        # Rates are the reciprocals of the paper's Table 17 GPU1 coefficients.
        build_rate=7.6e7,
        traversal_rate=2.75e9,
        shade_rate=4.7e8,
        cull_rate=4.8e8,
        raster_rate=2.7e9,
        cell_rate=7.0e9,
        sample_rate=9.3e8,
        kernel_overhead_seconds=2e-5,
        noise_sigma=0.06,
    )
)

register_architecture(
    ArchitectureSpec(
        name="gpu2-titan-k20",
        kind="gpu",
        description="NVIDIA Tesla K20 (ORNL Titan)",
        # Roughly 80 percent of the K40m rates (fewer SMX units, lower clock).
        build_rate=6.0e7,
        traversal_rate=2.2e9,
        shade_rate=3.8e8,
        cull_rate=3.8e8,
        raster_rate=2.2e9,
        cell_rate=5.6e9,
        sample_rate=7.4e8,
        kernel_overhead_seconds=2e-5,
        noise_sigma=0.07,
    )
)

# Chapter II / III desktop and co-processor devices (used by the substrate
# validation benchmarks, Tables 1-8).
register_architecture(
    ArchitectureSpec(
        name="gpu-titan-black",
        kind="gpu",
        description="GeForce GTX Titan Black (GPU1 of Chapter II)",
        build_rate=3.0e7,
        traversal_rate=1.9e9,
        shade_rate=5.5e8,
        cull_rate=3.0e9,
        raster_rate=1.2e9,
        cell_rate=3.0e9,
        sample_rate=3.0e8,
        kernel_overhead_seconds=1.5e-5,
        noise_sigma=0.05,
    )
)
register_architecture(
    ArchitectureSpec(
        name="gpu-k40-maverick",
        kind="gpu",
        description="Tesla K40 (TACC Maverick, GPU2 of Chapter II)",
        build_rate=2.5e7,
        traversal_rate=1.25e9,
        shade_rate=3.6e8,
        cull_rate=2.5e9,
        raster_rate=1.0e9,
        cell_rate=2.5e9,
        sample_rate=2.5e8,
        kernel_overhead_seconds=2e-5,
        noise_sigma=0.06,
    )
)
register_architecture(
    ArchitectureSpec(
        name="gpu-750ti",
        kind="gpu",
        description="GeForce GTX 750Ti (GPU3 of Chapter II)",
        build_rate=1.0e7,
        traversal_rate=6.5e8,
        shade_rate=1.9e8,
        cull_rate=1.0e9,
        raster_rate=4.0e8,
        cell_rate=1.0e9,
        sample_rate=1.0e8,
        kernel_overhead_seconds=1.5e-5,
        noise_sigma=0.06,
    )
)
register_architecture(
    ArchitectureSpec(
        name="gpu-620m",
        kind="gpu",
        description="GeForce GT 620M laptop GPU (GPU4 of Chapter II)",
        build_rate=2.0e6,
        traversal_rate=8.0e7,
        shade_rate=3.0e7,
        cull_rate=2.0e8,
        raster_rate=6.0e7,
        cell_rate=2.0e8,
        sample_rate=2.0e7,
        kernel_overhead_seconds=3e-5,
        noise_sigma=0.08,
    )
)
register_architecture(
    ArchitectureSpec(
        name="cpu-i7-4770k",
        kind="cpu",
        description="Intel i7 4770K quad core (CPU1 of Chapter II)",
        build_rate=2.0e6,
        traversal_rate=5.5e7,
        shade_rate=1.4e7,
        cull_rate=1.0e8,
        raster_rate=7.0e7,
        cell_rate=4.0e8,
        sample_rate=3.0e7,
        kernel_overhead_seconds=2e-5,
        noise_sigma=0.09,
    )
)
register_architecture(
    ArchitectureSpec(
        name="cpu-xeon-e5-2680",
        kind="cpu",
        description="Intel Xeon E5-2680 v2, 10 cores (CPU2 of Chapter II)",
        build_rate=5.0e6,
        traversal_rate=1.5e8,
        shade_rate=4.0e7,
        cull_rate=2.5e8,
        raster_rate=1.8e8,
        cell_rate=9.0e8,
        sample_rate=7.0e7,
        kernel_overhead_seconds=4e-5,
        noise_sigma=0.08,
    )
)
# ---------------------------------------------------------------------------
# Modern-GPU extrapolation profiles.  Table 15 validates the performance model
# on synthetic architectures; these extend the spectrum past the Kepler-era
# devices the paper measured so the scale study's architecture sweep spans
# roughly three orders of magnitude of device throughput.  Rates extrapolate
# the K40m profile by published peak-FLOP/bandwidth ratios (P100 ~4x, V100
# ~7x, A100 ~14x on the memory-bound terms) with kernel overhead shrinking as
# launch latency improved.
# ---------------------------------------------------------------------------
register_architecture(
    ArchitectureSpec(
        name="gpu-p100",
        kind="gpu",
        description="NVIDIA Tesla P100 (Pascal) -- ~4x K40m extrapolation",
        build_rate=3.0e8,
        traversal_rate=1.1e10,
        shade_rate=1.9e9,
        cull_rate=1.9e9,
        raster_rate=1.1e10,
        cell_rate=2.8e10,
        sample_rate=3.7e9,
        kernel_overhead_seconds=1e-5,
        noise_sigma=0.05,
    )
)
register_architecture(
    ArchitectureSpec(
        name="gpu-v100",
        kind="gpu",
        description="NVIDIA Tesla V100 (Volta) -- ~7x K40m extrapolation",
        build_rate=5.3e8,
        traversal_rate=1.9e10,
        shade_rate=3.3e9,
        cull_rate=3.4e9,
        raster_rate=1.9e10,
        cell_rate=4.9e10,
        sample_rate=6.5e9,
        kernel_overhead_seconds=8e-6,
        noise_sigma=0.05,
    )
)
register_architecture(
    ArchitectureSpec(
        name="gpu-a100",
        kind="gpu",
        description="NVIDIA A100 (Ampere) -- ~14x K40m extrapolation",
        build_rate=1.1e9,
        traversal_rate=3.9e10,
        shade_rate=6.6e9,
        cull_rate=6.7e9,
        raster_rate=3.8e10,
        cell_rate=9.8e10,
        sample_rate=1.3e10,
        kernel_overhead_seconds=6e-6,
        noise_sigma=0.04,
    )
)

register_architecture(
    ArchitectureSpec(
        name="mic-phi-openmp",
        kind="mic",
        description="Intel Xeon Phi 3120 with the OpenMP back-end (vector units idle)",
        build_rate=1.5e6,
        traversal_rate=3.3e7,
        shade_rate=8.0e6,
        cull_rate=6.0e7,
        raster_rate=4.0e7,
        cell_rate=2.0e8,
        sample_rate=1.5e7,
        kernel_overhead_seconds=3e-4,
        noise_sigma=0.10,
    )
)
register_architecture(
    ArchitectureSpec(
        name="mic-phi-ispc",
        kind="mic",
        description="Intel Xeon Phi 3120 with the ISPC back-end (vectorized)",
        build_rate=1.5e6,
        traversal_rate=2.1e8,
        shade_rate=5.0e7,
        cull_rate=3.5e8,
        raster_rate=2.5e8,
        cell_rate=1.2e9,
        sample_rate=9.0e7,
        kernel_overhead_seconds=3e-4,
        noise_sigma=0.10,
    )
)
