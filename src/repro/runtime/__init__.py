"""Simulated distributed-memory runtime (the reproduction's MPI substitute).

The paper's study runs MPI+X: each MPI task owns one block of the domain,
renders it locally, and participates in sort-last compositing.  The
reproduction executes all "ranks" inside one process but keeps the same
program structure: a :class:`SimulatedCommunicator` provides the collective
operations the compositing algorithms need and *accounts for every byte that
would have crossed the network*, so a network cost model can convert message
volume into communication time.

* :mod:`repro.runtime.communicator` -- rank handles, point-to-point and
  collective operations, byte/latency accounting, and a network model.
* :mod:`repro.runtime.decomposition` -- block domain decomposition and the
  weak/strong-scaling helpers the study parameters need.
"""

from repro.runtime.communicator import NetworkModel, RankCommunicator, SimulatedCommunicator
from repro.runtime.decomposition import BlockDecomposition, factor_into_blocks

__all__ = [
    "BlockDecomposition",
    "NetworkModel",
    "RankCommunicator",
    "SimulatedCommunicator",
    "factor_into_blocks",
]
