"""Block domain decomposition across simulated MPI tasks.

The study weak-scales its experiments: every task owns a cubic block of
``N^3`` cells and the global domain grows with the task count.  The
:class:`BlockDecomposition` captures that layout, assigns each rank its block
origin and extent in a shared world coordinate system, and can materialise a
per-rank :class:`~repro.geometry.mesh.UniformGrid` with a named synthetic
field evaluated consistently across blocks (so block boundaries line up just
as a real simulation's domain decomposition would).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.mesh import UniformGrid

__all__ = ["factor_into_blocks", "BlockDecomposition"]


def factor_into_blocks(num_tasks: int) -> tuple[int, int, int]:
    """Factor a task count into a near-cubic 3D process grid.

    The factors are chosen greedily from the largest prime factors so the
    resulting grid is as close to cubic as possible (matching how simulation
    codes typically lay out their blocks).
    """
    if num_tasks < 1:
        raise ValueError("num_tasks must be positive")
    factors: list[int] = []
    remaining = num_tasks
    divisor = 2
    while remaining > 1:
        while remaining % divisor == 0:
            factors.append(divisor)
            remaining //= divisor
        divisor += 1
    grid = [1, 1, 1]
    for factor in sorted(factors, reverse=True):
        grid[int(np.argmin(grid))] *= factor
    return tuple(sorted(grid, reverse=True))  # type: ignore[return-value]


@dataclass
class BlockDecomposition:
    """A weak-scaled decomposition of a global domain into per-task blocks.

    Parameters
    ----------
    num_tasks:
        Number of simulated MPI tasks.
    cells_per_task:
        Cells per axis owned by each task (``N`` for an ``N^3`` block).
    block_grid:
        Optional explicit process grid; computed with
        :func:`factor_into_blocks` when omitted.
    cell_size:
        World-space edge length of one cell (uniform).
    """

    num_tasks: int
    cells_per_task: int
    block_grid: tuple[int, int, int] | None = None
    cell_size: float = 1.0

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError("num_tasks must be positive")
        if self.cells_per_task < 1:
            raise ValueError("cells_per_task must be positive")
        if self.block_grid is None:
            self.block_grid = factor_into_blocks(self.num_tasks)
        bx, by, bz = self.block_grid
        if bx * by * bz != self.num_tasks:
            raise ValueError("block_grid does not multiply out to num_tasks")

    # -- global geometry ------------------------------------------------------------
    @property
    def global_cell_dims(self) -> tuple[int, int, int]:
        """Total cells per axis across the whole domain."""
        bx, by, bz = self.block_grid
        n = self.cells_per_task
        return (bx * n, by * n, bz * n)

    @property
    def total_cells(self) -> int:
        gx, gy, gz = self.global_cell_dims
        return gx * gy * gz

    @property
    def global_bounds(self) -> AABB:
        gx, gy, gz = self.global_cell_dims
        high = np.array([gx, gy, gz], dtype=np.float64) * self.cell_size
        return AABB(np.zeros(3), high)

    # -- per-rank geometry -------------------------------------------------------------
    def block_index(self, rank: int) -> tuple[int, int, int]:
        """3D block coordinates of a rank (x fastest)."""
        if not 0 <= rank < self.num_tasks:
            raise IndexError(f"rank {rank} out of range")
        bx, by, _ = self.block_grid
        return (rank % bx, (rank // bx) % by, rank // (bx * by))

    def block_bounds(self, rank: int) -> AABB:
        """World-space bounds of a rank's block."""
        ix, iy, iz = self.block_index(rank)
        n = self.cells_per_task * self.cell_size
        low = np.array([ix, iy, iz], dtype=np.float64) * n
        return AABB(low, low + n)

    def block_grid_for_rank(self, rank: int) -> UniformGrid:
        """A rank's block as a uniform grid (points = cells + 1 per axis)."""
        bounds = self.block_bounds(rank)
        points = self.cells_per_task + 1
        return UniformGrid(
            (points, points, points),
            origin=tuple(bounds.low),
            spacing=(self.cell_size,) * 3,
        )

    def block_grid_with_field(
        self, rank: int, field_name: str, field_function
    ) -> UniformGrid:
        """A rank's block carrying ``field_name`` evaluated at its points.

        ``field_function`` receives an ``(n, 3)`` array of *normalized global*
        coordinates (the point positions divided by the global extent, so the
        field is continuous across block boundaries) and returns one value per
        point.
        """
        grid = self.block_grid_for_rank(rank)
        points = grid.points()
        extent = np.maximum(self.global_bounds.extent, 1e-12)
        normalized = (points - self.global_bounds.low) / extent
        grid.add_point_field(field_name, np.asarray(field_function(normalized), dtype=np.float64))
        return grid

    def neighbor_ranks(self, rank: int) -> list[int]:
        """Face-adjacent neighbour ranks (used by halo-exchange style tests)."""
        bx, by, bz = self.block_grid
        ix, iy, iz = self.block_index(rank)
        neighbors = []
        for axis, (i, limit) in enumerate(((ix, bx), (iy, by), (iz, bz))):
            for delta in (-1, 1):
                coords = [ix, iy, iz]
                coords[axis] = i + delta
                if 0 <= coords[axis] < limit:
                    neighbors.append(coords[0] + bx * (coords[1] + by * coords[2]))
        return neighbors
