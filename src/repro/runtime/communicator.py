"""Simulated MPI communicator with message-volume accounting.

All ranks live in one Python process.  Point-to-point sends are immediate
(the payload is stored in the receiver's mailbox), and every transfer is
logged so that a :class:`NetworkModel` can convert the communication pattern
into an estimated wall-clock time.  That estimate is what the compositing
experiments (Section 5.6) use as the "communication" component of their
measured compositing time, alongside the real wall-clock cost of the local
blending arithmetic.

The interface intentionally mirrors the small subset of mpi4py that IceT-style
compositing needs: ``send``/``recv``, ``barrier``, ``gather``, ``allreduce``,
plus rank/size queries.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = ["NetworkModel", "SimulatedCommunicator", "RankCommunicator"]


@dataclass(frozen=True)
class NetworkModel:
    """Simple latency + bandwidth network cost model.

    ``time = latency_seconds * messages + bytes / bandwidth_bytes_per_second``
    evaluated over the critical path returned by
    :meth:`SimulatedCommunicator.estimate_time` (per-round maxima, since
    exchanges within a compositing round proceed concurrently).

    Defaults approximate a commodity cluster interconnect (a few microseconds
    of latency, a few GB/s per link).
    """

    latency_seconds: float = 5e-6
    bandwidth_bytes_per_second: float = 4e9

    def transfer_seconds(self, num_bytes: float, messages: int = 1) -> float:
        """Cost of moving ``num_bytes`` in ``messages`` messages over one link."""
        return self.latency_seconds * messages + num_bytes / self.bandwidth_bytes_per_second


@dataclass
class _MessageLog:
    """Per-round accounting of simulated traffic."""

    bytes_by_rank: dict[int, float] = field(default_factory=lambda: defaultdict(float))
    messages_by_rank: dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, rank: int, num_bytes: float) -> None:
        self.bytes_by_rank[rank] += num_bytes
        self.messages_by_rank[rank] += 1

    def critical_seconds(self, model: NetworkModel) -> float:
        """Slowest rank's communication time for this round."""
        if not self.bytes_by_rank:
            return 0.0
        return max(
            model.transfer_seconds(self.bytes_by_rank[rank], self.messages_by_rank[rank])
            for rank in self.bytes_by_rank
        )


def _payload_bytes(payload: Any) -> float:
    """Estimated wire size of a payload (numpy arrays dominate in practice)."""
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    if isinstance(payload, (tuple, list)):
        return float(sum(_payload_bytes(item) for item in payload))
    if isinstance(payload, dict):
        return float(sum(_payload_bytes(value) for value in payload.values()))
    if isinstance(payload, (bytes, bytearray)):
        return float(len(payload))
    return 64.0  # scalars / small metadata


class SimulatedCommunicator:
    """A world of ``size`` simulated ranks sharing one process.

    Rank-local code receives a :class:`RankCommunicator` view; the world
    object tracks mailboxes and traffic.  Compositing rounds are delimited
    with :meth:`next_round` so the network estimate can treat intra-round
    exchanges as concurrent and rounds as sequential.
    """

    def __init__(self, size: int, network: NetworkModel | None = None) -> None:
        if size < 1:
            raise ValueError("communicator size must be positive")
        self.size = int(size)
        self.network = network or NetworkModel()
        self._mailboxes: dict[tuple[int, int, int], deque] = defaultdict(deque)
        self._rounds: list[_MessageLog] = [_MessageLog()]

    # -- rank views -----------------------------------------------------------------
    def rank(self, rank: int) -> "RankCommunicator":
        """The communicator view for one rank."""
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} out of range for size {self.size}")
        return RankCommunicator(self, rank)

    def ranks(self) -> list["RankCommunicator"]:
        """Views for every rank."""
        return [self.rank(index) for index in range(self.size)]

    # -- messaging ------------------------------------------------------------------
    def _send(self, source: int, dest: int, tag: int, payload: Any) -> None:
        if not 0 <= dest < self.size:
            raise IndexError(f"destination rank {dest} out of range")
        self._mailboxes[(source, dest, tag)].append(payload)
        self._rounds[-1].record(source, _payload_bytes(payload))

    def exchange(self, sends: Any) -> dict[int, list[tuple[int, Any]]]:
        """One batched round of array-valued exchanges (the fast compositors' API).

        ``sends`` is an iterable of ``(source, dest, payload)`` or
        ``(source, dest, payload, wire_bytes)`` tuples, all belonging to the
        *current* communication round.  Every message is recorded exactly as
        an individual :meth:`RankCommunicator.send` would be -- same per-rank
        byte and message counts, so the per-round critical-path accounting of
        :meth:`estimate_time` is preserved -- but the payloads bypass the
        per-message mailboxes: the call returns ``{dest: [(source, payload),
        ...]}`` with each destination's messages in posting order, the way an
        MPI all-to-all hands a rank its receive buffer in one operation.

        ``wire_bytes`` overrides the payload-size estimate, letting senders
        charge the network for an encoded wire format (e.g. run-length
        compressed sub-images) while handing over zero-copy array views.
        """
        delivered: dict[int, list[tuple[int, Any]]] = defaultdict(list)
        for send in sends:
            source, dest, payload = send[0], send[1], send[2]
            if not 0 <= source < self.size:
                raise IndexError(f"source rank {source} out of range")
            if not 0 <= dest < self.size:
                raise IndexError(f"destination rank {dest} out of range")
            nbytes = float(send[3]) if len(send) > 3 else _payload_bytes(payload)
            self._rounds[-1].record(source, nbytes)
            delivered[dest].append((source, payload))
        return dict(delivered)

    def _recv(self, source: int, dest: int, tag: int) -> Any:
        queue = self._mailboxes.get((source, dest, tag))
        if not queue:
            raise RuntimeError(
                f"rank {dest} has no pending message from rank {source} with tag {tag}"
            )
        return queue.popleft()

    # -- accounting -------------------------------------------------------------------
    def next_round(self) -> None:
        """Mark the end of a communication round (rounds execute sequentially)."""
        self._rounds.append(_MessageLog())

    def total_bytes(self) -> float:
        """All bytes sent in the lifetime of the communicator."""
        return float(
            sum(sum(log.bytes_by_rank.values()) for log in self._rounds)
        )

    def total_messages(self) -> int:
        """All messages sent in the lifetime of the communicator."""
        return int(sum(sum(log.messages_by_rank.values()) for log in self._rounds))

    def estimate_time(self) -> float:
        """Network-model estimate of the communication critical path."""
        return float(sum(log.critical_seconds(self.network) for log in self._rounds))

    def round_totals(self) -> list[dict[int, tuple[float, int]]]:
        """Per-round ``{rank: (bytes_sent, messages_sent)}`` -- the round log.

        One entry per communication round (including rounds with no traffic),
        so tests can recompute :meth:`estimate_time` by hand: per round, the
        critical path is the maximum over ranks of
        ``NetworkModel.transfer_seconds(bytes, messages)``; rounds sum.
        """
        return [
            {
                rank: (float(log.bytes_by_rank[rank]), int(log.messages_by_rank[rank]))
                for rank in log.bytes_by_rank
            }
            for log in self._rounds
        ]

    def reset_accounting(self) -> None:
        """Clear traffic logs (mailboxes are left untouched)."""
        self._rounds = [_MessageLog()]


@dataclass
class RankCommunicator:
    """The view of a :class:`SimulatedCommunicator` seen by one rank."""

    world: SimulatedCommunicator
    rank: int

    @property
    def size(self) -> int:
        return self.world.size

    # -- point to point ------------------------------------------------------------
    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        """Send ``payload`` to ``dest`` (returns immediately)."""
        self.world._send(self.rank, dest, tag, payload)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Receive the next payload sent by ``source`` with ``tag``."""
        return self.world._recv(source, self.rank, tag)

    # -- collectives (driver-side helpers) ----------------------------------------------
    def barrier(self) -> None:
        """No-op in the single-process simulation (kept for interface parity)."""

    def gather(self, payload: Any, root: int = 0, tag: int = 99) -> list[Any] | None:
        """Send ``payload`` to ``root``; the root returns the list of payloads.

        Because all ranks run in one process, the driver calls ``gather`` on
        each rank in turn; non-root ranks return ``None``.
        """
        if self.rank != root:
            self.world._send(self.rank, root, tag, payload)
            return None
        gathered = []
        for source in range(self.size):
            if source == root:
                gathered.append(payload)
            else:
                gathered.append(self.world._recv(source, root, tag))
        return gathered

    def allreduce(self, value: float, op: Callable[[float, float], float] = max) -> float:
        """Driver-side reduction helper (identity in a single-rank world)."""
        return value
