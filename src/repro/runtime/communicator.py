"""Simulated MPI communicator with message-volume accounting.

All ranks live in one Python process.  Point-to-point sends are immediate
(the payload is stored in the receiver's mailbox), and every transfer is
logged so that a :class:`NetworkModel` can convert the communication pattern
into an estimated wall-clock time.  That estimate is what the compositing
experiments (Section 5.6) use as the "communication" component of their
measured compositing time, alongside the real wall-clock cost of the local
blending arithmetic.

Accounting is link-occupancy aware: every rank owns one full-duplex link, so
concurrent messages *sent by* one rank serialize on its egress side and
concurrent messages *arriving at* one rank serialize on its ingress side.
Within a round the busiest link direction is the critical path; rounds are
sequential.  This is the contention term the Eq. 5.5 communication component
picks up at large rank counts (e.g. direct-send funnelling P-1 messages into
each destination inside a single round).

The interface intentionally mirrors the small subset of mpi4py that IceT-style
compositing needs: ``send``/``recv``, ``barrier``, ``gather``, ``allreduce``,
plus rank/size queries.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = ["NetworkModel", "SimulatedCommunicator", "RankCommunicator"]


@dataclass(frozen=True)
class NetworkModel:
    """Simple latency + bandwidth network cost model.

    ``time = latency_seconds * messages + bytes / bandwidth_bytes_per_second``
    evaluated over the critical path returned by
    :meth:`SimulatedCommunicator.estimate_time` (per-round maxima, since
    exchanges within a compositing round proceed concurrently across links).

    With ``ingress_contention`` (the default) the per-round critical path also
    covers the receive side of every link: messages converging on one rank in
    the same round serialize there, even when their senders are distinct.
    Setting it to ``False`` restores the egress-only accounting the 256-rank
    compositing tier shipped with, which is useful for differential tests.

    Defaults approximate a commodity cluster interconnect (a few microseconds
    of latency, a few GB/s per link).
    """

    latency_seconds: float = 5e-6
    bandwidth_bytes_per_second: float = 4e9
    ingress_contention: bool = True

    def transfer_seconds(self, num_bytes: float, messages: int = 1) -> float:
        """Cost of moving ``num_bytes`` in ``messages`` messages over one link."""
        return self.latency_seconds * messages + num_bytes / self.bandwidth_bytes_per_second


@dataclass
class _MessageLog:
    """Per-round, per-link-direction accounting of simulated traffic."""

    bytes_by_rank: dict[int, float] = field(default_factory=lambda: defaultdict(float))
    messages_by_rank: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    recv_bytes_by_rank: dict[int, float] = field(default_factory=lambda: defaultdict(float))
    recv_messages_by_rank: dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, source: int, dest: int, num_bytes: float) -> None:
        self.bytes_by_rank[source] += num_bytes
        self.messages_by_rank[source] += 1
        self.recv_bytes_by_rank[dest] += num_bytes
        self.recv_messages_by_rank[dest] += 1

    def record_bulk(
        self, sources: np.ndarray, dests: np.ndarray, nbytes: np.ndarray
    ) -> None:
        """Aggregate-record many messages without per-message Python work.

        The streaming direct-send driver charges P*(P-1) logical messages per
        composite; at 16k ranks that is ~268M sends, far too many to enumerate.
        The per-link sums are all the cost model needs, so the caller hands
        over flat arrays and this folds them with two bincounts per direction.
        """
        sources = np.asarray(sources, dtype=np.int64)
        dests = np.asarray(dests, dtype=np.int64)
        nbytes = np.asarray(nbytes, dtype=np.float64)
        for ranks, byte_map, msg_map in (
            (sources, self.bytes_by_rank, self.messages_by_rank),
            (dests, self.recv_bytes_by_rank, self.recv_messages_by_rank),
        ):
            uniq, inverse, counts = np.unique(ranks, return_inverse=True, return_counts=True)
            sums = np.bincount(inverse, weights=nbytes)
            for rank, total, count in zip(uniq.tolist(), sums.tolist(), counts.tolist()):
                byte_map[rank] += total
                msg_map[rank] += int(count)

    def critical_seconds(self, model: NetworkModel) -> float:
        """Busiest link direction's communication time for this round."""
        directions: tuple[tuple[dict[int, float], dict[int, int]], ...]
        if model.ingress_contention:
            directions = (
                (self.bytes_by_rank, self.messages_by_rank),
                (self.recv_bytes_by_rank, self.recv_messages_by_rank),
            )
        else:
            directions = ((self.bytes_by_rank, self.messages_by_rank),)
        busiest = 0.0
        for byte_map, msg_map in directions:
            for rank, num_bytes in byte_map.items():
                seconds = model.transfer_seconds(num_bytes, msg_map[rank])
                if seconds > busiest:
                    busiest = seconds
        return busiest


def _payload_bytes(payload: Any) -> float:
    """Estimated wire size of a payload (numpy arrays dominate in practice)."""
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    if isinstance(payload, (tuple, list)):
        return float(sum(_payload_bytes(item) for item in payload))
    if isinstance(payload, dict):
        return float(sum(_payload_bytes(value) for value in payload.values()))
    if isinstance(payload, (bytes, bytearray)):
        return float(len(payload))
    return 64.0  # scalars / small metadata


class SimulatedCommunicator:
    """A world of ``size`` simulated ranks sharing one process.

    Rank-local code receives a :class:`RankCommunicator` view; the world
    object tracks mailboxes and traffic.  Compositing rounds are delimited
    with :meth:`next_round` so the network estimate can treat intra-round
    exchanges as concurrent and rounds as sequential.  Streaming drivers that
    revisit rounds out of order (cohort schedulers process one rank block at
    a time) instead pre-open the log with :meth:`ensure_rounds` and address
    rounds explicitly via the ``round_index`` arguments.
    """

    def __init__(self, size: int, network: NetworkModel | None = None) -> None:
        if size < 1:
            raise ValueError("communicator size must be positive")
        self.size = int(size)
        self.network = network or NetworkModel()
        self._mailboxes: dict[tuple[int, int, int], deque] = defaultdict(deque)
        self._rounds: list[_MessageLog] = [_MessageLog()]

    # -- rank views -----------------------------------------------------------------
    def rank(self, rank: int) -> "RankCommunicator":
        """The communicator view for one rank."""
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} out of range for size {self.size}")
        return RankCommunicator(self, rank)

    def ranks(self) -> list["RankCommunicator"]:
        """Views for every rank."""
        return [self.rank(index) for index in range(self.size)]

    # -- messaging ------------------------------------------------------------------
    def _send(self, source: int, dest: int, tag: int, payload: Any) -> None:
        if not 0 <= dest < self.size:
            raise IndexError(f"destination rank {dest} out of range")
        self._mailboxes[(source, dest, tag)].append(payload)
        self._rounds[-1].record(source, dest, _payload_bytes(payload))

    def _round_log(self, round_index: int | None) -> _MessageLog:
        if round_index is None:
            return self._rounds[-1]
        if round_index < 0:
            raise IndexError(f"round index {round_index} out of range")
        self.ensure_rounds(round_index + 1)
        return self._rounds[round_index]

    def exchange(
        self, sends: Any, round_index: int | None = None
    ) -> dict[int, list[tuple[int, Any]]]:
        """One batched round of array-valued exchanges (the fast compositors' API).

        ``sends`` is an iterable of ``(source, dest, payload)`` or
        ``(source, dest, payload, wire_bytes)`` tuples, all belonging to one
        communication round -- the *current* round by default, or the round
        named by ``round_index`` (cohort schedulers revisit earlier rounds as
        later rank blocks stream through).  Every message is recorded exactly
        as an individual :meth:`RankCommunicator.send` would be -- same
        per-link byte and message counts on both the egress and ingress side,
        so the per-round critical-path accounting of :meth:`estimate_time` is
        preserved -- but the payloads bypass the per-message mailboxes: the
        call returns ``{dest: [(source, payload), ...]}`` with each
        destination's messages in posting order, the way an MPI all-to-all
        hands a rank its receive buffer in one operation.

        ``wire_bytes`` overrides the payload-size estimate, letting senders
        charge the network for an encoded wire format (e.g. run-length
        compressed sub-images) while handing over zero-copy array views.
        """
        log = self._round_log(round_index)
        delivered: dict[int, list[tuple[int, Any]]] = defaultdict(list)
        for send in sends:
            source, dest, payload = send[0], send[1], send[2]
            if not 0 <= source < self.size:
                raise IndexError(f"source rank {source} out of range")
            if not 0 <= dest < self.size:
                raise IndexError(f"destination rank {dest} out of range")
            nbytes = float(send[3]) if len(send) > 3 else _payload_bytes(payload)
            log.record(source, dest, nbytes)
            delivered[dest].append((source, payload))
        return dict(delivered)

    def record_traffic(
        self,
        sources: np.ndarray,
        dests: np.ndarray,
        nbytes: np.ndarray,
        round_index: int | None = None,
    ) -> None:
        """Account messages in bulk without delivering payloads.

        Used where the data movement is implicit in a streaming merge (the
        payload never exists as a per-message object) but the wire traffic
        still has to feed the round log.  ``sources``/``dests``/``nbytes``
        are parallel flat arrays; aggregation is vectorized so recording the
        P^2 direct-send message matrix at 16k ranks stays cheap.
        """
        sources = np.asarray(sources, dtype=np.int64)
        dests = np.asarray(dests, dtype=np.int64)
        nbytes = np.asarray(nbytes, dtype=np.float64)
        if not (sources.shape == dests.shape == nbytes.shape):
            raise ValueError("sources, dests and nbytes must be parallel flat arrays")
        if sources.size == 0:
            return
        for name, ranks in (("source", sources), ("destination", dests)):
            bad = (ranks < 0) | (ranks >= self.size)
            if bad.any():
                raise IndexError(f"{name} rank {int(ranks[bad][0])} out of range")
        self._round_log(round_index).record_bulk(sources, dests, nbytes)

    def record_link_totals(
        self,
        round_index: int,
        sent_bytes: np.ndarray,
        sent_messages: np.ndarray,
        recv_bytes: np.ndarray,
        recv_messages: np.ndarray,
    ) -> None:
        """Fold pre-aggregated per-rank link totals into one round's log.

        The streaming direct-send driver accumulates a whole cohort's traffic
        into dense per-rank arrays (one slot per link direction) instead of
        materializing the message matrix; this adds those sums straight into
        the round's per-link maps.  All four arrays must have shape
        ``(size,)``, indexed by rank.
        """
        arrays = (sent_bytes, sent_messages, recv_bytes, recv_messages)
        if any(np.asarray(array).shape != (self.size,) for array in arrays):
            raise ValueError(f"link totals must be dense arrays of shape ({self.size},)")
        log = self._round_log(round_index)
        for byte_array, msg_array, byte_map, msg_map in (
            (sent_bytes, sent_messages, log.bytes_by_rank, log.messages_by_rank),
            (recv_bytes, recv_messages, log.recv_bytes_by_rank, log.recv_messages_by_rank),
        ):
            byte_array = np.asarray(byte_array, dtype=np.float64)
            msg_array = np.asarray(msg_array, dtype=np.int64)
            for rank in np.flatnonzero((byte_array != 0.0) | (msg_array != 0)).tolist():
                byte_map[rank] += float(byte_array[rank])
                msg_map[rank] += int(msg_array[rank])

    def _recv(self, source: int, dest: int, tag: int) -> Any:
        queue = self._mailboxes.get((source, dest, tag))
        if not queue:
            raise RuntimeError(
                f"rank {dest} has no pending message from rank {source} with tag {tag}"
            )
        return queue.popleft()

    # -- accounting -------------------------------------------------------------------
    def next_round(self) -> None:
        """Mark the end of a communication round (rounds execute sequentially)."""
        self._rounds.append(_MessageLog())

    def ensure_rounds(self, count: int) -> None:
        """Open the round log out to ``count`` rounds (idempotent).

        Streaming schedulers know the exchange schedule up front but fill it
        block by block; pre-opening the rounds lets them record traffic into
        the same round from many cohorts while :meth:`estimate_time` keeps
        treating each round as one concurrent step.
        """
        while len(self._rounds) < count:
            self._rounds.append(_MessageLog())

    @property
    def num_rounds(self) -> int:
        """Number of rounds currently in the log (including the open one)."""
        return len(self._rounds)

    def total_bytes(self) -> float:
        """All bytes sent in the lifetime of the communicator."""
        return float(
            sum(sum(log.bytes_by_rank.values()) for log in self._rounds)
        )

    def total_messages(self) -> int:
        """All messages sent in the lifetime of the communicator."""
        return int(sum(sum(log.messages_by_rank.values()) for log in self._rounds))

    def estimate_time(self) -> float:
        """Network-model estimate of the communication critical path."""
        return float(sum(log.critical_seconds(self.network) for log in self._rounds))

    def round_totals(self) -> list[dict[int, tuple[float, int]]]:
        """Per-round ``{rank: (bytes_sent, messages_sent)}`` -- the egress log.

        One entry per communication round (including rounds with no traffic).
        This is the send-side half of the accounting; the contention-aware
        critical path of :meth:`estimate_time` also weighs the receive side,
        which :meth:`round_link_totals` exposes in full.
        """
        return [
            {
                rank: (float(log.bytes_by_rank[rank]), int(log.messages_by_rank[rank]))
                for rank in log.bytes_by_rank
            }
            for log in self._rounds
        ]

    def round_summaries(self) -> list[dict]:
        """Compact per-round traffic summary (the round-log artifact format).

        One dict per round with the aggregate ``bytes`` and ``messages``,
        the number of ``active_links`` (ranks whose link carried traffic in
        either direction), and ``busiest_link_seconds`` -- the round's
        contention-aware critical path, whose sum over rounds is
        :meth:`estimate_time`.  Small enough to serialize at 16k ranks, where
        the full :meth:`round_link_totals` log is not.
        """
        summaries = []
        for log in self._rounds:
            summaries.append(
                {
                    "bytes": float(sum(log.bytes_by_rank.values())),
                    "messages": int(sum(log.messages_by_rank.values())),
                    "active_links": len(set(log.bytes_by_rank) | set(log.recv_bytes_by_rank)),
                    "busiest_link_seconds": float(log.critical_seconds(self.network)),
                }
            )
        return summaries

    def round_link_totals(self) -> list[dict[int, tuple[float, int, float, int]]]:
        """Per-round ``{rank: (sent_bytes, sent_msgs, recv_bytes, recv_msgs)}``.

        The full link-occupancy log: a rank appears if either direction of
        its link carried traffic in that round.  Tests recompute
        :meth:`estimate_time` by hand from this -- per round, the critical
        path is the maximum over ranks and directions of
        ``NetworkModel.transfer_seconds(bytes, messages)``; rounds sum.
        """
        totals: list[dict[int, tuple[float, int, float, int]]] = []
        for log in self._rounds:
            ranks = set(log.bytes_by_rank) | set(log.recv_bytes_by_rank)
            totals.append(
                {
                    rank: (
                        float(log.bytes_by_rank.get(rank, 0.0)),
                        int(log.messages_by_rank.get(rank, 0)),
                        float(log.recv_bytes_by_rank.get(rank, 0.0)),
                        int(log.recv_messages_by_rank.get(rank, 0)),
                    )
                    for rank in sorted(ranks)
                }
            )
        return totals

    def reset_accounting(self) -> None:
        """Clear traffic logs (mailboxes are left untouched)."""
        self._rounds = [_MessageLog()]


@dataclass
class RankCommunicator:
    """The view of a :class:`SimulatedCommunicator` seen by one rank."""

    world: SimulatedCommunicator
    rank: int

    @property
    def size(self) -> int:
        return self.world.size

    # -- point to point ------------------------------------------------------------
    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        """Send ``payload`` to ``dest`` (returns immediately)."""
        self.world._send(self.rank, dest, tag, payload)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Receive the next payload sent by ``source`` with ``tag``."""
        return self.world._recv(source, self.rank, tag)

    # -- collectives (driver-side helpers) ----------------------------------------------
    def barrier(self) -> None:
        """No-op in the single-process simulation (kept for interface parity)."""

    def gather(self, payload: Any, root: int = 0, tag: int = 99) -> list[Any] | None:
        """Send ``payload`` to ``root``; the root returns the list of payloads.

        Because all ranks run in one process, the driver calls ``gather`` on
        each rank in turn; non-root ranks return ``None``.
        """
        if self.rank != root:
            self.world._send(self.rank, root, tag, payload)
            return None
        gathered = []
        for source in range(self.size):
            if source == root:
                gathered.append(payload)
            else:
                gathered.append(self.world._recv(source, root, tag))
        return gathered

    def allreduce(self, value: float, op: Callable[[float, float], float] = max) -> float:
        """Driver-side reduction helper (identity in a single-rank world)."""
        return value
