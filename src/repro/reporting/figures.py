"""Data emitters for the paper's figures (Figures 11-15).

Figures are emitted as machine-checkable JSON (the full series -- per-point
held-out errors, feasibility curves, ratio grids) plus a compact Markdown
summary for CI job summaries.  Like the table emitters, a missing slice is
recorded rather than raised: the RT-vs-raster grid (Figure 15) simply lists no
grids when a corpus has no rasterization rows.
"""

from __future__ import annotations

import numpy as np

from repro.modeling.feasibility import images_within_budget, raytracing_vs_rasterization
from repro.modeling.study import StudyCorpus
from repro.reporting.suite import ModelSuite
from repro.reporting.tables import markdown_table

__all__ = [
    "fig11_crossval_error",
    "fig12_compositing_histogram",
    "fig13_compositing_crossval",
    "fig14_images_per_budget",
    "fig15_rt_vs_raster",
    "FIGURE_EMITTERS",
]

#: Figure 14 sweep: square image edge lengths and the fixed budget/simulation.
BUDGET_IMAGE_SIZES = (1024, 1536, 2048, 3072, 4096)
BUDGET_SECONDS = 60.0
BUDGET_TASKS = 32
BUDGET_CELLS_PER_TASK = 200

#: Figure 15 grid: image sizes x per-task data sizes (100 renderings, 32 tasks).
RATIO_IMAGE_SIZES = (384, 768, 1152, 1920, 2688, 4096)
RATIO_DATA_SIZES = (100, 200, 300, 400, 500)
RATIO_NUM_RENDERINGS = 100


def _artifact(number: int, slug: str, title: str, **body) -> dict:
    return {"figure": number, "slug": slug, "title": title, **body}


# -- Figure 11 ------------------------------------------------------------------------


def fig11_crossval_error(suite: ModelSuite, corpus: StudyCorpus) -> tuple[dict, str]:
    """Held-out relative error versus predicted time, per renderer model."""
    series = []
    md_rows = []
    for key in sorted(suite.entries):
        entry = suite.entries[key]
        if entry.crossval is None:
            series.append(
                {
                    "architecture": entry.architecture,
                    "technique": entry.technique,
                    "available": False,
                    "crossval_skipped": entry.crossval_skipped,
                }
            )
            md_rows.append([entry.architecture, entry.technique, "(skipped)", "-", "-"])
            continue
        summary = entry.crossval
        errors = np.abs(summary.errors) * 100.0
        median_prediction = np.median(summary.predictions)
        fast_half = errors[summary.predictions < median_prediction]
        slow_half = errors[summary.predictions >= median_prediction]
        series.append(
            {
                "architecture": entry.architecture,
                "technique": entry.technique,
                "available": True,
                "errors": [float(v) for v in summary.errors],
                "predictions": [float(v) for v in summary.predictions],
                "actuals": [float(v) for v in summary.actuals],
                "mean_abs_error_fast_half": float(np.mean(fast_half)) if len(fast_half) else 0.0,
                "mean_abs_error_slow_half": float(np.mean(slow_half)) if len(slow_half) else 0.0,
                "max_abs_error": float(np.max(errors)) if len(errors) else 0.0,
            }
        )
        md_rows.append(
            [
                entry.architecture,
                entry.technique,
                f"{series[-1]['mean_abs_error_fast_half']:.1f}%",
                f"{series[-1]['mean_abs_error_slow_half']:.1f}%",
                f"{series[-1]['max_abs_error']:.1f}%",
            ]
        )
    title = "Figure 11: cross-validation error vs predicted render time"
    payload = _artifact(11, "crossval_error", title, folds=suite.folds, seed=suite.seed, series=series)
    markdown = f"### {title}\n\n" + markdown_table(
        ["architecture", "technique", "mean |err| fast half", "mean |err| slow half", "max |err|"],
        md_rows,
    )
    return payload, markdown


# -- Figures 12 and 13 ----------------------------------------------------------------


def fig12_compositing_histogram(suite: ModelSuite, corpus: StudyCorpus) -> tuple[dict, str]:
    """Compositing time by task count and pixel count (the Eq. 5.5 corpus)."""
    rows = [
        {
            "algorithm": record.algorithm,
            "num_tasks": record.num_tasks,
            "pixels": record.pixels,
            "average_active_pixels": float(record.average_active_pixels),
            "seconds": float(record.seconds),
        }
        for record in corpus.compositing_records
    ]
    title = "Figure 12: compositing time by tasks and pixels"
    payload = _artifact(12, "compositing_histogram", title, rows=rows)
    md_rows = [
        [row["algorithm"], row["num_tasks"], row["pixels"], f"{row['seconds']:.5f}s"] for row in rows
    ]
    markdown = f"### {title}\n\n" + markdown_table(["algorithm", "tasks", "pixels", "time"], md_rows)
    return payload, markdown


def fig13_compositing_crossval(suite: ModelSuite, corpus: StudyCorpus) -> tuple[dict, str]:
    """Held-out error of the compositing model, banded by predicted time."""
    title = "Figure 13: compositing cross-validation error by predicted-time band"
    entry = suite.compositing
    if entry is None or entry.crossval is None:
        reason = "no compositing rows" if entry is None else entry.crossval_skipped
        payload = _artifact(13, "compositing_crossval", title, available=False, reason=reason)
        return payload, f"### {title}\n\n(unavailable: {reason})\n"
    summary = entry.crossval
    errors = np.abs(summary.errors) * 100.0
    order = np.argsort(summary.predictions, kind="stable")
    bands = []
    md_rows = []
    labels = ("small predictions", "medium predictions", "large predictions")
    for label, indices in zip(labels, np.array_split(order, 3)):
        mean_error = float(np.mean(errors[indices])) if len(indices) else 0.0
        max_error = float(np.max(errors[indices])) if len(indices) else 0.0
        bands.append({"band": label, "mean_abs_error": mean_error, "max_abs_error": max_error})
        md_rows.append([label, f"{mean_error:.1f}%", f"{max_error:.1f}%"])
    payload = _artifact(
        13,
        "compositing_crossval",
        title,
        available=True,
        bands=bands,
        errors=[float(v) for v in summary.errors],
        predictions=[float(v) for v in summary.predictions],
    )
    markdown = f"### {title}\n\n" + markdown_table(["band", "mean |err|", "max |err|"], md_rows)
    return payload, markdown


# -- Figure 14 ------------------------------------------------------------------------


def fig14_images_per_budget(suite: ModelSuite, corpus: StudyCorpus) -> tuple[dict, str]:
    """Images renderable in a fixed budget for every fitted model (Figure 14)."""
    points = images_within_budget(
        suite.models(),
        budget_seconds=BUDGET_SECONDS,
        num_tasks=BUDGET_TASKS,
        cells_per_task=BUDGET_CELLS_PER_TASK,
        image_sizes=np.array(BUDGET_IMAGE_SIZES),
    )
    title = (
        f"Figure 14: images renderable in a {BUDGET_SECONDS:.0f}s budget "
        f"({BUDGET_TASKS} tasks, {BUDGET_CELLS_PER_TASK}^3 cells/task)"
    )
    payload = _artifact(
        14,
        "images_per_budget",
        title,
        budget_seconds=BUDGET_SECONDS,
        num_tasks=BUDGET_TASKS,
        cells_per_task=BUDGET_CELLS_PER_TASK,
        points=[point.as_dict() for point in points],
    )
    md_rows = [
        [
            point.architecture,
            point.technique,
            point.image_size,
            f"{point.seconds_per_image:.4f}s",
            point.images_in_budget,
        ]
        for point in points
    ]
    markdown = f"### {title}\n\n" + markdown_table(
        ["architecture", "technique", "image size", "s/image", "images in budget"], md_rows
    )
    return payload, markdown


# -- Figure 15 ------------------------------------------------------------------------


def fig15_rt_vs_raster(suite: ModelSuite, corpus: StudyCorpus) -> tuple[dict, str]:
    """Rasterization-time / ray-tracing-time ratio grids (Figure 15).

    One grid per architecture that has both a ray-tracing and a rasterization
    model; ratios above one mean ray tracing produces more images per unit
    time over :data:`RATIO_NUM_RENDERINGS` renderings (one amortised BVH
    build).
    """
    grids = []
    markdown_parts = []
    architectures = sorted({architecture for architecture, _ in suite.entries})
    for architecture in architectures:
        raytrace = suite.entries.get((architecture, "raytrace"))
        raster = suite.entries.get((architecture, "raster"))
        if raytrace is None or raster is None:
            continue
        heat = raytracing_vs_rasterization(
            raytrace.model,
            raster.model,
            architecture,
            num_tasks=BUDGET_TASKS,
            num_renderings=RATIO_NUM_RENDERINGS,
            image_sizes=np.array(RATIO_IMAGE_SIZES),
            data_sizes=np.array(RATIO_DATA_SIZES),
        )
        grids.append(
            {
                "architecture": architecture,
                "image_sizes": [int(v) for v in heat["image_sizes"]],
                "data_sizes": [int(v) for v in heat["data_sizes"]],
                "ratio": [[float(v) for v in row] for row in heat["ratio"]],
            }
        )
        md_rows = [
            [f"{cells}^3", *[f"{value:.2f}" for value in row]]
            for cells, row in zip(RATIO_DATA_SIZES, heat["ratio"])
        ]
        markdown_parts.append(
            f"**{architecture}**\n\n"
            + markdown_table(["data size", *[f"{size}^2" for size in RATIO_IMAGE_SIZES]], md_rows)
        )
    title = (
        f"Figure 15: rasterization time / ray-tracing time "
        f"({RATIO_NUM_RENDERINGS} renderings, {BUDGET_TASKS} tasks)"
    )
    payload = _artifact(
        15,
        "rt_vs_raster",
        title,
        num_renderings=RATIO_NUM_RENDERINGS,
        num_tasks=BUDGET_TASKS,
        grids=grids,
    )
    if markdown_parts:
        markdown = f"### {title}\n\n" + "\n".join(markdown_parts)
    else:
        markdown = f"### {title}\n\n(no architecture has both ray-tracing and rasterization models)\n"
    return payload, markdown


#: Slug -> emitter, in figure order (the report orchestrator iterates this).
FIGURE_EMITTERS = {
    "fig11_crossval_error": fig11_crossval_error,
    "fig12_compositing_histogram": fig12_compositing_histogram,
    "fig13_compositing_crossval": fig13_compositing_crossval,
    "fig14_images_per_budget": fig14_images_per_budget,
    "fig15_rt_vs_raster": fig15_rt_vs_raster,
}
