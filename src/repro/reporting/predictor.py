"""Vectorized batch prediction with bounded-error intervals -- the serving seam.

A :class:`Predictor` wraps a :class:`~repro.reporting.suite.ModelSuite`
(usually loaded from ``models.json``) and answers prediction queries for
thousands of configurations per call:

* :meth:`Predictor.predict_configurations` -- user-facing configurations
  (tasks, data size, resolution) go through the vectorized Section 5.8
  mapping (:func:`repro.modeling.features.map_configuration_batch`) and the
  vectorized design matrices of :mod:`repro.modeling.models`; one BLAS
  matrix-vector product per fit group serves the whole batch.
* :meth:`Predictor.predict_features` -- observed (or pre-mapped) model inputs,
  the path that reproduces a corpus's in-sample predictions bit for bit.
* :meth:`Predictor.predict_compositing` -- Eq. 5.5 queries.

Every answer is a :class:`PredictionBatch` carrying a symmetric
residual-standard-deviation interval: ``seconds +- sigmas * residual_std``
with the lower bound clipped at zero (run times are non-negative).  The
interval is the fit's residual standard error -- the same "bounded error"
contract the paper's Table 15 validation leans on -- not a formal prediction
interval; DESIGN.md documents the contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.modeling.features import feature_arrays, map_configuration_batch
from repro.modeling.models import RayTracingModel
from repro.modeling.regression import LinearRegressionResult
from repro.rendering.result import ObservedFeatures
from repro.reporting.suite import FittedModel, ModelSuite

__all__ = ["PredictionBatch", "Predictor", "TermPlan", "DEFAULT_INTERVAL_SIGMAS"]

#: Interval half-width in residual standard deviations (~95% under normality).
DEFAULT_INTERVAL_SIGMAS = 2.0


@dataclass(frozen=True)
class TermPlan:
    """Hoisted term-design metadata for one ``(entry, include_build)`` query shape.

    Built once per shape and cached on the :class:`Predictor`: the ordered
    ``(term-matrix builder, fit)`` pairs and the combined residual standard
    deviation.  Repeated ``predict_features``/``predict_configurations`` calls
    on the same slice reuse the plan instead of re-dispatching on the model
    type and re-deriving the interval variance per call -- the serving tier's
    hot path hits this thousands of times per second.
    """

    builders: tuple[tuple[object, LinearRegressionResult], ...]
    residual_std: float


@dataclass
class PredictionBatch:
    """Predicted seconds plus the bounded-error band for one query batch."""

    seconds: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    residual_std: float
    sigmas: float

    def __len__(self) -> int:
        return len(self.seconds)

    def as_dict(self) -> dict:
        """JSON-serializable form (the ``predict`` CLI's output rows)."""
        return {
            "seconds": [float(value) for value in self.seconds],
            "lower": [float(value) for value in self.lower],
            "upper": [float(value) for value in self.upper],
            "residual_std": float(self.residual_std),
            "sigmas": float(self.sigmas),
        }


class Predictor:
    """Batch prediction over every model of a fitted (or loaded) suite."""

    def __init__(self, suite: ModelSuite) -> None:
        self.suite = suite
        self._plans: dict[tuple[str, str, bool], TermPlan] = {}

    @classmethod
    def load(cls, path: str | Path) -> "Predictor":
        """Load a ``models.json`` written by :meth:`ModelSuite.save`."""
        return cls(ModelSuite.load(path))

    # -- introspection -----------------------------------------------------------------
    def available(self) -> list[tuple[str, str]]:
        """Sorted ``(architecture, technique)`` keys this predictor serves."""
        keys = sorted(self.suite.entries)
        if self.suite.compositing is not None:
            keys.append(self.suite.compositing.key)
        return keys

    # -- prediction --------------------------------------------------------------------
    def predict_features(
        self,
        architecture: str,
        technique: str,
        features: list[ObservedFeatures] | dict[str, np.ndarray],
        include_build: bool = True,
        sigmas: float = DEFAULT_INTERVAL_SIGMAS,
    ) -> PredictionBatch:
        """Predict from observed/mapped model inputs.

        ``features`` is either a list of :class:`ObservedFeatures` (corpus
        rows) or a dictionary of aligned column arrays.  On a fitted suite
        this reproduces ``model.predict_many`` exactly (the round-trip
        guarantee the reporting acceptance tests pin down).
        """
        entry = self.suite.get(architecture, technique)
        arrays = features if isinstance(features, dict) else feature_arrays(features)
        return self._predict_entry(entry, arrays, include_build, sigmas)

    def predict_configurations(
        self,
        architecture: str,
        technique: str,
        num_tasks: np.ndarray | int,
        cells_per_task: np.ndarray | int,
        image_width: np.ndarray | int,
        image_height: np.ndarray | int,
        samples_in_depth: np.ndarray | int = 1000,
        include_build: bool = True,
        sigmas: float = DEFAULT_INTERVAL_SIGMAS,
    ) -> PredictionBatch:
        """Predict user-facing configurations through the Section 5.8 mapping.

        All configuration parameters broadcast, so a resolution sweep is one
        call with an array of image sizes; the whole batch is mapped and
        predicted vectorized.
        """
        arrays = map_configuration_batch(
            technique, num_tasks, cells_per_task, image_width, image_height, samples_in_depth
        )
        return self.predict_features(architecture, technique, arrays, include_build, sigmas)

    def predict_compositing(
        self,
        average_active_pixels: np.ndarray | float,
        pixels: np.ndarray | int,
        sigmas: float = DEFAULT_INTERVAL_SIGMAS,
    ) -> PredictionBatch:
        """Predict Eq. 5.5 compositing times for a batch of (avg AP, pixels)."""
        entry = self.suite.get("", "compositing")
        active, pixel_counts = np.broadcast_arrays(
            np.atleast_1d(np.asarray(average_active_pixels, dtype=np.float64)),
            np.atleast_1d(np.asarray(pixels, dtype=np.float64)),
        )
        arrays = {"average_active_pixels": active, "pixels": pixel_counts}
        return self._predict_entry(entry, arrays, include_build=False, sigmas=sigmas)

    def interval_widths_for_specs(
        self, spec_payloads: list[dict], sigmas: float = DEFAULT_INTERVAL_SIGMAS
    ) -> np.ndarray:
        """Prediction-interval widths (``upper - lower``) for sweep-spec payloads.

        The adaptive planner's scoring seam: each payload is one
        :meth:`~repro.study.plan.ExperimentSpec.key_payload` and the returned
        array is aligned with the input.  Specs are grouped by model slice and
        served with one vectorized call per group:

        * ``render``/``synthetic`` specs go through the Section 5.8 mapping
          (``include_build=True``, so ray-tracing widths quadrature-combine
          the build and frame residuals);
        * ``compositing`` specs use the mapping's a-priori active-pixel
          estimate (camera fill fraction over the task count's cube root);
        * a spec whose ``(architecture, technique)`` slice has no fitted model
          scores ``inf`` -- an unfit slice is maximal uncertainty and must
          outrank every fitted one.

        Widths inherit the interval contract, including the clip of the lower
        bound at zero: a configuration whose predicted seconds sit inside the
        half-width has a genuinely narrower (one-sided) interval.
        """
        widths = np.empty(len(spec_payloads), dtype=np.float64)
        groups: dict[tuple[str, str], list[int]] = {}
        for index, payload in enumerate(spec_payloads):
            if payload.get("kind") == "compositing":
                key = ("", "compositing")
            else:
                key = (payload["architecture"], payload["technique"])
            groups.setdefault(key, []).append(index)
        for (architecture, technique), indices in groups.items():
            try:
                self.suite.get(architecture, technique)
            except KeyError:
                widths[indices] = np.inf
                continue
            rows = [spec_payloads[index] for index in indices]
            if technique == "compositing":
                pixels = np.array([float(row["pixel_size"]) ** 2 for row in rows], dtype=np.float64)
                # A-priori avg(AP) estimate: the Section 5.8 camera fill
                # fraction shrunk by the task count's cube root, matching
                # map_configuration_to_features (scalar pow: see
                # map_configuration_batch on why not array pow).
                from repro.modeling.features import CAMERA_FILL_FRACTION

                active = np.array(
                    [
                        CAMERA_FILL_FRACTION * float(row["pixel_size"]) ** 2
                        / float(row["num_tasks"]) ** (1.0 / 3.0)
                        for row in rows
                    ],
                    dtype=np.float64,
                )
                batch = self.predict_compositing(active, pixels, sigmas=sigmas)
            else:
                samples = np.array(
                    [
                        float(
                            row["samples_in_depth"]
                            if row.get("kind") == "render"
                            else row["synthetic_samples_in_depth"]
                        )
                        for row in rows
                    ],
                    dtype=np.float64,
                )
                batch = self.predict_configurations(
                    architecture,
                    technique,
                    np.array([float(row["num_tasks"]) for row in rows]),
                    np.array([float(row["cells_per_task"]) for row in rows]),
                    np.array([float(row["image_width"]) for row in rows]),
                    np.array([float(row["image_height"]) for row in rows]),
                    samples_in_depth=samples,
                    include_build=True,
                    sigmas=sigmas,
                )
            widths[indices] = batch.upper - batch.lower
        return widths

    # -- internals ---------------------------------------------------------------------
    def term_plan(self, entry: FittedModel, include_build: bool) -> TermPlan:
        """The cached :class:`TermPlan` for one entry and build-inclusion choice.

        Building a plan resolves the model-type dispatch, the term-matrix
        builders, and the (quadrature-combined, for ray tracing with build)
        residual standard deviation exactly once; every later call on the
        same shape is a dictionary hit with no new structure allocated.
        """
        key = (entry.architecture, entry.technique, include_build)
        plan = self._plans.get(key)
        if plan is not None:
            return plan
        model = entry.model
        if isinstance(model, RayTracingModel):
            builders = [(RayTracingModel.frame_term_matrix, model.frame_fit)]
            variance = model.frame_fit.residual_std**2
            if include_build:
                builders.append((RayTracingModel.build_term_matrix, model.build_fit))
                variance += model.build_fit.residual_std**2
            plan = TermPlan(tuple(builders), float(np.sqrt(variance)))
        else:
            plan = TermPlan(
                ((type(model).term_matrix, model.fit_result),), float(model.fit_result.residual_std)
            )
        self._plans[key] = plan
        return plan

    def _predict_entry(
        self, entry: FittedModel, arrays: dict[str, np.ndarray], include_build: bool, sigmas: float
    ) -> PredictionBatch:
        plan = self.term_plan(entry, include_build)
        seconds = None
        for builder, fit in plan.builders:
            term_seconds = fit.predict(builder(arrays))
            seconds = term_seconds if seconds is None else seconds + term_seconds
        residual_std = plan.residual_std
        half_width = sigmas * residual_std
        return PredictionBatch(
            seconds=seconds,
            lower=np.maximum(seconds - half_width, 0.0),
            upper=seconds + half_width,
            residual_std=residual_std,
            sigmas=float(sigmas),
        )
