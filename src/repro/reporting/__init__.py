"""The corpus-to-paper reporting subsystem.

Turns any study corpus (smoke or full) into the paper's deliverables and a
reusable prediction API:

* :mod:`repro.reporting.suite` -- :class:`ModelSuite`, the fitted-model
  registry: every (architecture, technique) model plus compositing fitted in
  one call, with k-fold accuracy, coefficient/residual diagnostics (negative
  coefficients promoted to structured warnings), and serialization to a
  versioned ``models.json``.
* :mod:`repro.reporting.tables` / :mod:`repro.reporting.figures` -- emitters
  for Tables 12-17 and Figures 11-15, each producing machine-checkable JSON
  plus human-readable Markdown.
* :mod:`repro.reporting.predictor` -- the vectorized batch :class:`Predictor`
  serving thousands of configurations per call with residual-std bounded-error
  intervals.
* :mod:`repro.reporting.report` -- :func:`generate_report`, the deterministic
  corpus -> artifact-tree orchestrator behind ``python -m repro.study report``.
"""

from repro.reporting.predictor import DEFAULT_INTERVAL_SIGMAS, PredictionBatch, Predictor
from repro.reporting.report import REPORT_SCHEMA_VERSION, ReportResult, generate_report
from repro.reporting.suite import (
    MODELS_SCHEMA_VERSION,
    COMPOSITING_ARCHITECTURE,
    FittedModel,
    ModelSuite,
)

__all__ = [
    "COMPOSITING_ARCHITECTURE",
    "DEFAULT_INTERVAL_SIGMAS",
    "FittedModel",
    "MODELS_SCHEMA_VERSION",
    "ModelSuite",
    "PredictionBatch",
    "Predictor",
    "REPORT_SCHEMA_VERSION",
    "ReportResult",
    "generate_report",
]
