"""Corpus -> paper-artifact orchestration (``python -m repro.study report``).

:func:`generate_report` is a pure function of the corpus: it fits the
:class:`~repro.reporting.suite.ModelSuite`, writes ``models.json``, runs every
table and figure emitter, and assembles the manifest (``report.json``) plus
the consolidated Markdown bundle (``report.md``) CI publishes to the job
summary.  Nothing in the tree depends on wall-clock time, process identity, or
dictionary insertion order, so regenerating a report from the same corpus is
byte-for-byte identical -- the property CI asserts on every smoke sweep.

Output layout (under ``out_dir``)::

    models.json                  the versioned fitted-model registry
    report.json                  manifest: corpus digest, fits, failures, files
    report.md                    all tables/figures as Markdown (CI job summary)
    tables/table{12..17}_*.json  machine-checkable table payloads
    tables/table{12..17}_*.md    per-table Markdown
    figures/fig{11..15}_*.json   figure data series
    figures/fig{11..15}_*.md     per-figure Markdown summaries
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.modeling.study import StudyCorpus
from repro.reporting.figures import FIGURE_EMITTERS
from repro.reporting.suite import ModelSuite
from repro.reporting.tables import TABLE_EMITTERS
from repro.study.corpus_io import corpus_digest

__all__ = ["REPORT_SCHEMA_VERSION", "ReportResult", "generate_report"]

#: Version guard of the ``report.json`` manifest schema.
REPORT_SCHEMA_VERSION = 1


@dataclass
class ReportResult:
    """Everything one report run produced."""

    suite: ModelSuite
    manifest: dict
    out_dir: Path
    paths: list[Path] = field(default_factory=list)

    @property
    def markdown_path(self) -> Path:
        return self.out_dir / "report.md"

    @property
    def models_path(self) -> Path:
        return self.out_dir / "models.json"


def _write(path: Path, text: str) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def _write_json(path: Path, payload: dict) -> Path:
    return _write(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def generate_report(
    corpus: StudyCorpus, out_dir: str | Path, folds: int = 3, seed: int = 2016
) -> ReportResult:
    """Turn a study corpus into the full paper-artifact tree.

    Never raises on degenerate corpora: every slice that cannot be fitted is a
    structured failure in the manifest, and emitters record unavailable
    sections instead of dying.  Callers that need the all-degenerate case to
    be an error (the CLI) check :meth:`ModelSuite.is_empty` on the result.
    """
    out_dir = Path(out_dir)
    suite = ModelSuite.fit_corpus(corpus, folds=folds, seed=seed)
    paths: list[Path] = []
    markdown_parts: list[str] = []

    paths.append(suite.save(out_dir / "models.json"))

    for group, emitters in (("tables", TABLE_EMITTERS), ("figures", FIGURE_EMITTERS)):
        for slug, emitter in emitters.items():
            payload, markdown = emitter(suite, corpus)
            paths.append(_write_json(out_dir / group / f"{slug}.json", payload))
            paths.append(_write(out_dir / group / f"{slug}.md", markdown))
            markdown_parts.append(markdown)

    digest = corpus_digest(corpus)
    manifest = {
        "schema": REPORT_SCHEMA_VERSION,
        "corpus": {
            "digest": digest,
            "records": len(corpus.records),
            "compositing_records": len(corpus.compositing_records),
            "failures": len(corpus.failures),
        },
        "folds": folds,
        "seed": seed,
        "fitted": [list(key) for key in sorted(suite.entries)],
        "compositing_fitted": suite.compositing is not None,
        "fit_failures": suite.failures,
        "warnings": suite.all_warnings(),
        "artifacts": sorted(str(path.relative_to(out_dir)) for path in paths),
    }
    paths.append(_write_json(out_dir / "report.json", manifest))

    header = [
        "# Study report: fitted models, accuracy, and feasibility",
        "",
        f"- corpus digest: `{digest}`",
        f"- rendering rows: {len(corpus.records)}, compositing rows: "
        f"{len(corpus.compositing_records)}, sweep failures: {len(corpus.failures)}",
        f"- fitted models: {len(suite.entries)}"
        + (" + compositing" if suite.compositing is not None else ""),
        f"- cross validation: {folds}-fold, seed {seed}",
        "",
    ]
    warnings = suite.all_warnings()
    if suite.failures or warnings:
        header.append("## Diagnostics")
        header.append("")
        for failure in suite.failures:
            header.append(
                f"- DEGENERATE FIT `{failure['architecture']}/{failure['technique']}`: "
                f"{failure['message']} ({failure['num_rows']} rows)"
            )
        for warning in warnings:
            detail = {
                key: value
                for key, value in warning.items()
                if key not in ("kind", "architecture", "technique")
            }
            header.append(
                f"- {warning['kind'].upper()} `{warning['architecture']}/{warning['technique']}`: "
                f"{json.dumps(detail, sort_keys=True)}"
            )
        header.append("")
    markdown = "\n".join(header) + "\n" + "\n".join(markdown_parts)
    paths.append(_write(out_dir / "report.md", markdown))

    return ReportResult(suite=suite, manifest=manifest, out_dir=out_dir, paths=paths)
