"""The fitted-model registry: every per-technique/per-architecture model in one object.

:class:`ModelSuite` is the reporting subsystem's core artifact.  One call
(:meth:`ModelSuite.fit_corpus`) fits every ``(architecture, technique)`` slice
of a study corpus (Eqs. 5.1-5.3) plus the compositing model (Eq. 5.5),
cross-validates each fit k-fold, runs the coefficient/residual diagnostics the
paper prescribes ("no input variables should have a negative linear
relationship to run-time"), and records every degenerate slice as a structured
failure instead of dying.

The suite serializes to a versioned ``models.json`` (:data:`MODELS_SCHEMA_VERSION`)
that round-trips exactly: coefficients are stored at full float precision, so a
:class:`~repro.reporting.predictor.Predictor` loaded from disk reproduces the
in-memory suite's predictions bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.modeling.crossval import CrossValidationSummary
from repro.modeling.models import RayTracingModel, make_model
from repro.modeling.regression import LinearRegressionResult
from repro.modeling.study import StudyCorpus

__all__ = [
    "MODELS_SCHEMA_VERSION",
    "COMPOSITING_ARCHITECTURE",
    "LOW_R_SQUARED_FLOOR",
    "FittedModel",
    "ModelSuite",
]

#: Version guard of the ``models.json`` schema.
MODELS_SCHEMA_VERSION = 1

#: Placeholder architecture label of the (architecture-independent) Eq. 5.5 fit.
COMPOSITING_ARCHITECTURE = "-"

#: Fits explaining less variance than this are flagged with a structured
#: warning (the paper's weakest usable model, compositing, sits near 0.7).
LOW_R_SQUARED_FLOOR = 0.5


@dataclass
class FittedModel:
    """One fitted model plus its accuracy summary and diagnostics.

    ``crossval`` holds the full k-fold summary when the suite was fitted in
    this process (the figure emitters need the per-point errors);
    ``crossval_accuracy`` holds the aggregate Table 13/14 row and survives
    serialization.  A suite loaded from ``models.json`` therefore predicts and
    tabulates, but cannot re-emit the per-point figures -- those always come
    from a corpus.
    """

    architecture: str
    technique: str
    model: object
    num_rows: int
    crossval: CrossValidationSummary | None = None
    crossval_accuracy: dict | None = None
    crossval_skipped: str = ""
    warnings: list[dict] = field(default_factory=list)

    @property
    def key(self) -> tuple[str, str]:
        return (self.architecture, self.technique)

    def fit_groups(self) -> dict[str, LinearRegressionResult]:
        """The model's OLS fit groups (two for ray tracing, one otherwise)."""
        if isinstance(self.model, RayTracingModel):
            return {"build": self.model.build_fit, "frame": self.model.frame_fit}
        return {"fit": self.model.fit_result}

    def diagnostics(self) -> dict:
        """Residual/coefficient diagnostics of every fit group."""
        groups = {}
        for name, fit in self.fit_groups().items():
            coefficients = fit.named_coefficients()
            groups[name] = {
                "r_squared": float(fit.r_squared),
                "residual_std": float(fit.residual_std),
                "num_observations": int(fit.num_observations),
                "coefficients": coefficients,
                "negative_terms": sorted(term for term, value in coefficients.items() if value < 0.0),
            }
        return groups


def _coefficient_warnings(entry: FittedModel) -> list[dict]:
    """Negative-coefficient red flags, promoted to structured warnings.

    The renderer models are fit with a non-negativity constraint, so these
    fire mainly on the plain-OLS compositing fit -- exactly the variable
    selection discipline the paper (via Stine's least-angle-regression
    discussion) uses to spot invalid models.
    """
    warnings = []
    for group, fit in entry.fit_groups().items():
        for term, value in fit.named_coefficients().items():
            if value < 0.0:
                warnings.append(
                    {
                        "kind": "negative_coefficient",
                        "architecture": entry.architecture,
                        "technique": entry.technique,
                        "group": group,
                        "term": term,
                        "value": float(value),
                    }
                )
    return warnings


def _quality_warnings(entry: FittedModel) -> list[dict]:
    """Low-R-squared residual diagnostics."""
    warnings = []
    for group, fit in entry.fit_groups().items():
        if fit.r_squared < LOW_R_SQUARED_FLOOR:
            warnings.append(
                {
                    "kind": "low_r_squared",
                    "architecture": entry.architecture,
                    "technique": entry.technique,
                    "group": group,
                    "value": float(fit.r_squared),
                    "floor": LOW_R_SQUARED_FLOOR,
                }
            )
    return warnings


@dataclass
class ModelSuite:
    """Every model the corpus supports, fitted, validated, and serializable."""

    entries: dict[tuple[str, str], FittedModel] = field(default_factory=dict)
    compositing: FittedModel | None = None
    failures: list[dict] = field(default_factory=list)
    folds: int = 3
    seed: int = 2016

    # -- fitting -----------------------------------------------------------------------
    @classmethod
    def fit_corpus(cls, corpus: StudyCorpus, folds: int = 3, seed: int = 2016) -> "ModelSuite":
        """Fit the full registry from a corpus in one call.

        Degenerate slices (too few rows for the slice's coefficient count,
        singular designs, ...) become structured entries in :attr:`failures`
        rather than exceptions: a partially-degenerate corpus still yields
        every model it can support, and callers can tell exactly what was
        skipped and why.
        """
        suite = cls(folds=folds, seed=seed)
        for architecture, technique, rows in corpus.slices():
            try:
                model = corpus.fit_model(architecture, technique)
            except Exception as error:  # noqa: BLE001 -- every degenerate fit becomes a row
                suite.failures.append(_failure(architecture, technique, len(rows), error))
                continue
            entry = FittedModel(architecture, technique, model, len(rows))
            suite._finish_entry(
                entry,
                lambda: corpus.cross_validate(architecture, technique, k=folds, seed=seed),
            )
            suite.entries[entry.key] = entry
        if corpus.compositing_records:
            rows = corpus.compositing_records
            try:
                model = corpus.fit_compositing_model()
            except Exception as error:  # noqa: BLE001
                suite.failures.append(_failure(COMPOSITING_ARCHITECTURE, "compositing", len(rows), error))
            else:
                entry = FittedModel(COMPOSITING_ARCHITECTURE, "compositing", model, len(rows))
                suite._finish_entry(entry, lambda: corpus.cross_validate_compositing(k=folds, seed=seed))
                suite.compositing = entry
        return suite

    def _finish_entry(self, entry: FittedModel, run_crossval) -> None:
        """Attach cross validation and diagnostics to a freshly fitted entry."""
        entry.warnings.extend(_coefficient_warnings(entry))
        entry.warnings.extend(_quality_warnings(entry))
        try:
            entry.crossval = run_crossval()
            entry.crossval_accuracy = entry.crossval.accuracy_row()
        except Exception as error:  # noqa: BLE001 -- e.g. too few rows (ValueError),
            # nnls non-convergence (RuntimeError), singular folds (LinAlgError):
            # a pathological fold must degrade to a warning, not kill the report.
            entry.crossval_skipped = str(error)
            entry.warnings.append(
                {
                    "kind": "crossval_skipped",
                    "architecture": entry.architecture,
                    "technique": entry.technique,
                    "message": str(error),
                }
            )

    # -- access ------------------------------------------------------------------------
    def models(self) -> dict[tuple[str, str], object]:
        """Renderer models keyed by ``(architecture, technique)``.

        The same shape :meth:`StudyCorpus.fit_all_models` returns, so the
        feasibility analyses (Figures 14/15) consume a suite unchanged.
        """
        return {key: entry.model for key, entry in self.entries.items()}

    def get(self, architecture: str, technique: str) -> FittedModel:
        """Entry lookup with a helpful error listing what is available."""
        if technique == "compositing":
            if self.compositing is None:
                raise KeyError("no compositing model in this suite")
            return self.compositing
        try:
            return self.entries[(architecture, technique)]
        except KeyError:
            available = ", ".join(f"{a}/{t}" for a, t in sorted(self.entries)) or "none"
            raise KeyError(
                f"no fitted model for ({architecture!r}, {technique!r}); available: {available}"
            ) from None

    def all_entries(self) -> list[FittedModel]:
        """Renderer entries in sorted key order, compositing (if any) last."""
        ordered = [self.entries[key] for key in sorted(self.entries)]
        if self.compositing is not None:
            ordered.append(self.compositing)
        return ordered

    def all_warnings(self) -> list[dict]:
        """Every structured warning of every fitted entry."""
        collected: list[dict] = []
        for entry in self.all_entries():
            collected.extend(entry.warnings)
        return collected

    def slice_errors(self) -> list[dict]:
        """Per-slice cross-validated error rows, in :meth:`all_entries` order.

        One JSON-safe row per fitted slice: row count, per-fit-group residual
        standard deviations (the interval half-width's fuel), and the k-fold
        accuracy aggregate when cross validation ran (``None`` plus the skip
        reason otherwise).  The learning-curve trajectory
        (:mod:`repro.study.trajectory`) appends exactly these rows, so the
        error-vs-corpus-size curve is readable straight off ``BENCH_learning
        .json`` without refitting anything.
        """
        rows: list[dict] = []
        for entry in self.all_entries():
            accuracy = entry.crossval_accuracy
            rows.append(
                {
                    "architecture": entry.architecture,
                    "technique": entry.technique,
                    "num_rows": int(entry.num_rows),
                    "residual_std": {
                        name: float(fit.residual_std) for name, fit in entry.fit_groups().items()
                    },
                    "crossval_average_percent": (
                        float(accuracy["average_percent"]) if accuracy else None
                    ),
                    "crossval_within_50": float(accuracy["within_50"]) if accuracy else None,
                    "crossval_skipped": entry.crossval_skipped,
                }
            )
        return rows

    def is_empty(self) -> bool:
        """True when *nothing* could be fitted (the all-degenerate case)."""
        return not self.entries and self.compositing is None

    # -- serialization -----------------------------------------------------------------
    def to_payload(self) -> dict:
        """The versioned ``models.json`` payload (schema documented in DESIGN.md)."""
        return {
            "schema": MODELS_SCHEMA_VERSION,
            "folds": self.folds,
            "seed": self.seed,
            "models": [_entry_payload(self.entries[key]) for key in sorted(self.entries)],
            "compositing": _entry_payload(self.compositing) if self.compositing else None,
            "failures": self.failures,
            "warnings": self.all_warnings(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ModelSuite":
        schema = payload.get("schema")
        if schema != MODELS_SCHEMA_VERSION:
            raise ValueError(
                f"models.json schema {schema!r} is not the supported {MODELS_SCHEMA_VERSION}"
            )
        suite = cls(folds=int(payload.get("folds", 3)), seed=int(payload.get("seed", 2016)))
        for entry_payload in payload.get("models", []):
            entry = _entry_from_payload(entry_payload)
            suite.entries[entry.key] = entry
        if payload.get("compositing"):
            suite.compositing = _entry_from_payload(payload["compositing"])
        suite.failures = [dict(failure) for failure in payload.get("failures", [])]
        return suite

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ModelSuite":
        with open(path, encoding="utf-8") as handle:
            return cls.from_payload(json.load(handle))


# -- payload helpers ------------------------------------------------------------------


def _failure(architecture: str, technique: str, num_rows: int, error: Exception) -> dict:
    return {
        "architecture": architecture,
        "technique": technique,
        "reason": "degenerate-fit",
        "error_type": type(error).__name__,
        "message": str(error),
        "num_rows": num_rows,
    }


def _fit_payload(fit: LinearRegressionResult) -> dict:
    return {
        "term_names": list(fit.term_names),
        "coefficients": [float(value) for value in fit.coefficients],
        "r_squared": float(fit.r_squared),
        "residual_std": float(fit.residual_std),
        "num_observations": int(fit.num_observations),
    }


def _fit_from_payload(payload: dict) -> LinearRegressionResult:
    return LinearRegressionResult(
        coefficients=np.asarray(payload["coefficients"], dtype=np.float64),
        r_squared=float(payload["r_squared"]),
        residual_std=float(payload["residual_std"]),
        num_observations=int(payload["num_observations"]),
        term_names=tuple(payload.get("term_names", ())),
    )


def _entry_payload(entry: FittedModel) -> dict:
    crossval = None
    if entry.crossval_accuracy is not None:
        crossval = {"accuracy": entry.crossval_accuracy}
        if entry.crossval is not None:
            crossval["num_folds"] = entry.crossval.num_folds
            crossval["fold_r_squared"] = [float(v) for v in entry.crossval.fold_r_squared]
    return {
        "architecture": entry.architecture,
        "technique": entry.technique,
        "num_rows": entry.num_rows,
        "fits": {name: _fit_payload(fit) for name, fit in entry.fit_groups().items()},
        "diagnostics": entry.diagnostics(),
        "crossval": crossval,
        "crossval_skipped": entry.crossval_skipped,
        "warnings": entry.warnings,
    }


def _entry_from_payload(payload: dict) -> FittedModel:
    technique = payload["technique"]
    model = make_model(technique)
    fits = payload["fits"]
    if isinstance(model, RayTracingModel):
        model.build_fit = _fit_from_payload(fits["build"])
        model.frame_fit = _fit_from_payload(fits["frame"])
    else:
        model.fit_result = _fit_from_payload(fits["fit"])
    crossval = payload.get("crossval") or None
    return FittedModel(
        architecture=payload["architecture"],
        technique=technique,
        model=model,
        num_rows=int(payload["num_rows"]),
        crossval_accuracy=crossval["accuracy"] if crossval else None,
        crossval_skipped=payload.get("crossval_skipped", ""),
        warnings=[dict(warning) for warning in payload.get("warnings", [])],
    )
