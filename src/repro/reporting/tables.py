"""Emitters for the paper's model tables (Tables 12-17).

Every emitter maps a fitted :class:`~repro.reporting.suite.ModelSuite` (plus,
where the table compares against measurements, the corpus itself) to a pair

    ``(payload, markdown)``

where ``payload`` is machine-checkable JSON (stable keys, full-precision
floats, deterministic row order) and ``markdown`` is the human-readable table
published to CI job summaries.  Emitters never raise on missing slices: a
corpus without rasterization rows still produces Tables 12-17, with the
unavailable rows recorded as such -- the smoke corpus exercises exactly that.
"""

from __future__ import annotations

from repro.machines.costmodel import KernelCostModel
from repro.modeling.features import RenderingConfiguration, map_configuration_to_features
from repro.modeling.models import RayTracingModel
from repro.modeling.study import HOST_ARCHITECTURE, StudyCorpus
from repro.reporting.suite import ModelSuite

__all__ = [
    "markdown_table",
    "table12_model_r2",
    "table13_crossval_accuracy",
    "table14_compositing_accuracy",
    "table15_large_scale_prediction",
    "table16_mapping_validation",
    "table17_coefficients",
    "TABLE_EMITTERS",
]

#: The paper-scale validation configuration of Table 15 (1024 tasks of 252^3
#: cells -- ~16.4 billion elements -- at 2048^2, the Titan workflow).
LARGE_SCALE_TASKS = 1024
LARGE_SCALE_CELLS = 252
LARGE_SCALE_IMAGE = 2048

#: Noise-stream seed of the synthesized "measured" times Table 15 compares
#: against (fixed so regenerated reports are byte-identical).
LARGE_SCALE_ORACLE_SEED = 314

#: Fallback ``samples_in_depth`` for mapping host configurations from corpora
#: recorded before rows carried the value (schema additions are tolerant);
#: fresh corpora use the per-row recorded depth so the mapped SPR term matches
#: the experiment being validated.
HOST_MAPPING_SAMPLES_IN_DEPTH = 200

_SYNTHETIC_TECHNIQUE = {
    "raytrace": "raytrace",
    "raster": "raster",
    "volume": "volume_structured",
    "volume_unstructured": "volume_unstructured",
}


def markdown_table(headers: list[str], rows: list[list[object]]) -> str:
    """A GitHub-flavored Markdown table."""
    lines = [
        "| " + " | ".join(str(header) for header in headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines) + "\n"


def _artifact(number: int, slug: str, title: str, **body) -> dict:
    return {"table": number, "slug": slug, "title": title, **body}


# -- Table 12 -------------------------------------------------------------------------


def table12_model_r2(suite: ModelSuite, corpus: StudyCorpus) -> tuple[dict, str]:
    """R-squared of every fitted single-node model (plus compositing)."""
    rows = []
    for entry in suite.all_entries():
        rows.append(
            {
                "architecture": entry.architecture,
                "technique": entry.technique,
                "r_squared": float(entry.model.r_squared),
                "num_rows": entry.num_rows,
            }
        )
    title = "Table 12: model R^2 by architecture and technique"
    payload = _artifact(12, "model_r2", title, rows=rows, fit_failures=suite.failures)
    md_rows = [
        [row["architecture"], row["technique"], f"{row['r_squared']:.4f}", row["num_rows"]]
        for row in rows
    ]
    for failure in suite.failures:
        degenerate = f"(degenerate: {failure['message']})"
        md_rows.append([failure["architecture"], failure["technique"], degenerate, failure["num_rows"]])
    markdown = f"### {title}\n\n" + markdown_table(
        ["architecture", "technique", "R^2", "rows"], md_rows
    )
    return payload, markdown


# -- Tables 13 and 14 -----------------------------------------------------------------


def _accuracy_cells(entry) -> list[str]:
    accuracy = entry.crossval_accuracy
    if accuracy is None:
        return [f"(skipped: {entry.crossval_skipped})", "-", "-", "-", "-"]
    return [
        f"{accuracy['within_50']:.1f}",
        f"{accuracy['within_25']:.1f}",
        f"{accuracy['within_10']:.1f}",
        f"{accuracy['within_5']:.1f}",
        f"{accuracy['average_percent']:.1f}",
    ]


def table13_crossval_accuracy(suite: ModelSuite, corpus: StudyCorpus) -> tuple[dict, str]:
    """K-fold accuracy of the renderer models (% within 50/25/10/5, average)."""
    rows = []
    md_rows = []
    for key in sorted(suite.entries):
        entry = suite.entries[key]
        rows.append(
            {
                "architecture": entry.architecture,
                "technique": entry.technique,
                "accuracy": entry.crossval_accuracy,
                "crossval_skipped": entry.crossval_skipped,
                "num_rows": entry.num_rows,
            }
        )
        md_rows.append([entry.architecture, entry.technique, *_accuracy_cells(entry)])
    title = f"Table 13: {suite.folds}-fold cross-validation accuracy (% of held-out predictions in band)"
    payload = _artifact(13, "crossval_accuracy", title, folds=suite.folds, seed=suite.seed, rows=rows)
    markdown = f"### {title}\n\n" + markdown_table(
        ["architecture", "technique", "50%", "25%", "10%", "5%", "avg err %"], md_rows
    )
    return payload, markdown


def table14_compositing_accuracy(suite: ModelSuite, corpus: StudyCorpus) -> tuple[dict, str]:
    """Accuracy of the Eq. 5.5 compositing model."""
    title = "Table 14: compositing model accuracy"
    entry = suite.compositing
    if entry is None:
        payload = _artifact(14, "compositing_accuracy", title, available=False, rows=[])
        return payload, f"### {title}\n\n(no compositing rows in this corpus)\n"
    row = {
        "accuracy": entry.crossval_accuracy,
        "crossval_skipped": entry.crossval_skipped,
        "r_squared": float(entry.model.r_squared),
        "num_rows": entry.num_rows,
    }
    payload = _artifact(
        14, "compositing_accuracy", title, available=True, folds=suite.folds, rows=[row]
    )
    md_rows = [[*_accuracy_cells(entry), f"{row['r_squared']:.3f}", entry.num_rows]]
    markdown = f"### {title}\n\n" + markdown_table(
        ["50%", "25%", "10%", "5%", "avg err %", "R^2 (full fit)", "rows"], md_rows
    )
    return payload, markdown


# -- Table 15 -------------------------------------------------------------------------


def table15_large_scale_prediction(suite: ModelSuite, corpus: StudyCorpus) -> tuple[dict, str]:
    """Large-scale prediction versus the synthesized oracle (the Titan workflow).

    For every synthesized (non-host) architecture in the suite, predict the
    paper's 1024-task / 252^3 / 2048^2 configuration from the corpus-fitted
    model and compare against the architecture's kernel cost model -- the
    reproduction's stand-in for "measured on the leading-edge machine".  Host
    models are excluded: there is no oracle for real hardware at that scale.
    """
    rows = []
    for key in sorted(suite.entries):
        entry = suite.entries[key]
        if entry.architecture == HOST_ARCHITECTURE:
            continue
        config = RenderingConfiguration(
            technique=entry.technique,
            architecture=entry.architecture,
            num_tasks=LARGE_SCALE_TASKS,
            cells_per_task=LARGE_SCALE_CELLS,
            image_width=LARGE_SCALE_IMAGE,
            image_height=LARGE_SCALE_IMAGE,
        )
        features = map_configuration_to_features(config)
        oracle = KernelCostModel(entry.architecture, seed=LARGE_SCALE_ORACLE_SEED)
        actual = oracle.total(
            _SYNTHETIC_TECHNIQUE[entry.technique], features, include_build=False
        )
        if isinstance(entry.model, RayTracingModel):
            predicted = entry.model.predict(features, include_build=False)
        else:
            predicted = entry.model.predict(features)
        difference = 100.0 * (predicted - actual) / max(actual, 1e-12)
        rows.append(
            {
                "architecture": entry.architecture,
                "technique": entry.technique,
                "actual_seconds": float(actual),
                "predicted_seconds": float(predicted),
                "difference_percent": float(difference),
                "sample_points": entry.num_rows,
            }
        )
    title = (
        f"Table 15: large-scale prediction ({LARGE_SCALE_TASKS} tasks, "
        f"{LARGE_SCALE_CELLS}^3 cells/task, {LARGE_SCALE_IMAGE}^2) vs the synthesized oracle"
    )
    payload = _artifact(
        15,
        "large_scale_prediction",
        title,
        configuration={
            "num_tasks": LARGE_SCALE_TASKS,
            "cells_per_task": LARGE_SCALE_CELLS,
            "image_size": LARGE_SCALE_IMAGE,
            "oracle_seed": LARGE_SCALE_ORACLE_SEED,
        },
        rows=rows,
    )
    md_rows = [
        [
            row["architecture"],
            row["technique"],
            f"{row['actual_seconds']:.4f}s",
            f"{row['predicted_seconds']:.4f}s",
            f"{row['difference_percent']:+.1f}%",
            row["sample_points"],
        ]
        for row in rows
    ]
    markdown = f"### {title}\n\n" + markdown_table(
        ["architecture", "technique", "actual", "predicted", "difference", "sample points"], md_rows
    )
    return payload, markdown


# -- Table 16 -------------------------------------------------------------------------


def table16_mapping_validation(
    suite: ModelSuite, corpus: StudyCorpus, rows_per_technique: int = 2
) -> tuple[dict, str]:
    """Mapped (a-priori) versus observed model inputs on host experiments."""
    rows = []
    for technique in corpus.techniques():
        entry = suite.entries.get((HOST_ARCHITECTURE, technique))
        if entry is None:
            continue
        for record in corpus.select(HOST_ARCHITECTURE, technique)[:rows_per_technique]:
            config = RenderingConfiguration(
                technique=record.technique,
                architecture=HOST_ARCHITECTURE,
                num_tasks=record.num_tasks,
                cells_per_task=record.cells_per_task,
                image_width=record.image_width,
                image_height=record.image_height,
                samples_in_depth=record.samples_in_depth or HOST_MAPPING_SAMPLES_IN_DEPTH,
            )
            mapped = map_configuration_to_features(config)
            model = entry.model
            predicted_mapping = model.predict(mapped)
            predicted_observed = model.predict(record.features)
            rows.append(
                {
                    "technique": record.technique,
                    "cells_per_task": record.cells_per_task,
                    "image_width": record.image_width,
                    "num_tasks": record.num_tasks,
                    "objects_mapped": int(mapped.objects),
                    "objects_observed": int(record.features.objects),
                    "active_pixels_mapped": int(mapped.active_pixels),
                    "active_pixels_observed": int(record.features.active_pixels),
                    "predicted_from_mapping": float(predicted_mapping),
                    "predicted_from_observed": float(predicted_observed),
                    "actual_seconds": float(record.total_seconds),
                }
            )
    title = "Table 16: mapping validation (predicted-from-mapping vs predicted-from-observed vs actual)"
    note = "" if rows else "no host-measured rows in this corpus"
    payload = _artifact(16, "mapping_validation", title, rows=rows, note=note)
    md_rows = [
        [
            row["technique"],
            f"{row['cells_per_task']}^3",
            f"{row['image_width']}^2",
            row["num_tasks"],
            f"{row['objects_mapped']} / {row['objects_observed']}",
            f"{row['active_pixels_mapped']} / {row['active_pixels_observed']}",
            f"{row['predicted_from_mapping']:.3f}s",
            f"{row['predicted_from_observed']:.3f}s",
            f"{row['actual_seconds']:.3f}s",
        ]
        for row in rows
    ]
    markdown = f"### {title}\n\n"
    if rows:
        markdown += markdown_table(
            [
                "technique",
                "mesh",
                "image",
                "tasks",
                "objects (map/obs)",
                "active px (map/obs)",
                "mapping",
                "experiment",
                "actual",
            ],
            md_rows,
        )
    else:
        markdown += f"({note})\n"
    return payload, markdown


# -- Table 17 -------------------------------------------------------------------------


def table17_coefficients(suite: ModelSuite, corpus: StudyCorpus) -> tuple[dict, str]:
    """Experimentally determined coefficients of every fitted model."""
    rows = []
    for entry in suite.all_entries():
        coefficients = {}
        for group, fit in entry.fit_groups().items():
            for term, value in fit.named_coefficients().items():
                coefficients[term] = float(value)
        rows.append(
            {
                "architecture": entry.architecture,
                "technique": entry.technique,
                "coefficients": coefficients,
                "negative_terms": sorted(t for t, v in coefficients.items() if v < 0.0),
            }
        )
    title = "Table 17: fitted model coefficients"
    payload = _artifact(17, "coefficients", title, rows=rows, warnings=suite.all_warnings())
    width = max((len(row["coefficients"]) for row in rows), default=5)
    md_rows = []
    for row in rows:
        values = [f"{value:.3e}" for value in row["coefficients"].values()]
        md_rows.append(
            [row["technique"], row["architecture"], *values, *[""] * (width - len(values))]
        )
    headers = ["technique", "architecture", *[f"c{i}" for i in range(width)]]
    markdown = f"### {title}\n\n" + markdown_table(headers, md_rows)
    return payload, markdown


#: Slug -> emitter, in table order (the report orchestrator iterates this).
TABLE_EMITTERS = {
    "table12_model_r2": table12_model_r2,
    "table13_crossval_accuracy": table13_crossval_accuracy,
    "table14_compositing_accuracy": table14_compositing_accuracy,
    "table15_large_scale_prediction": table15_large_scale_prediction,
    "table16_mapping_validation": table16_mapping_validation,
    "table17_coefficients": table17_coefficients,
}
