"""A minimal stdlib asyncio HTTP/1.1 client for the prediction server.

Used by the serving tests and the load-generation benchmark.  Two layers:

* Pure helpers -- :func:`request_bytes` builds a wire request,
  :func:`read_response` parses one response off a stream (keep-alive aware,
  ``Content-Length`` only: exactly what the server emits).
* :class:`ServingClient` -- a persistent connection with sequential
  request/response convenience calls (``predict``, ``stats``, ``reload``).

The load benchmark drives *pipelined* traffic (many requests written before
any response is read) straight through the helpers; the client class stays
deliberately sequential so its latency numbers are per-request truths.
"""

from __future__ import annotations

import asyncio
import json

__all__ = ["request_bytes", "read_response", "ServingClient"]


def request_bytes(method: str, path: str, payload: object | None = None) -> bytes:
    """One HTTP/1.1 keep-alive request on the wire."""
    body = b"" if payload is None else json.dumps(payload, separators=(",", ":")).encode()
    return (
        f"{method} {path} HTTP/1.1\r\nHost: serving\r\nContent-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body


async def read_response(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """Parse one ``(status, body)`` response off the stream."""
    header = await reader.readuntil(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    length = 0
    lowered = header.lower()
    marker = lowered.find(b"content-length:")
    if marker >= 0:
        line_end = lowered.find(b"\r\n", marker)
        length = int(lowered[marker + 15 : line_end])
    body = await reader.readexactly(length) if length else b""
    return status, body


class ServingClient:
    """A sequential keep-alive connection to one prediction server."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServingClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, method: str, path: str, payload: object | None = None) -> tuple[int, dict]:
        self.writer.write(request_bytes(method, path, payload))
        await self.writer.drain()
        status, body = await read_response(self.reader)
        return status, json.loads(body) if body else {}

    async def predict(self, configs: list[dict] | dict, sigmas: float | None = None) -> tuple[int, dict]:
        payload: object = configs
        if sigmas is not None:
            payload = {"configs": configs if isinstance(configs, list) else [configs], "sigmas": sigmas}
        return await self.request("POST", "/predict", payload)

    async def stats(self) -> dict:
        _, payload = await self.request("GET", "/stats")
        return payload

    async def reload(self) -> dict:
        _, payload = await self.request("POST", "/reload")
        return payload

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
