"""The synchronous serving core: canonical configs, result cache, vectorized groups.

Everything request-shaped funnels through :meth:`ServingCore.predict_canonical`
-- the HTTP server's micro-batch flush and the ``python -m repro.study
predict`` CLI alike -- so there is exactly one request path to keep
bit-identical to :meth:`Predictor.predict_configurations
<repro.reporting.predictor.Predictor.predict_configurations>`:

* :func:`canonical_config` validates one user-facing configuration dict and
  reduces it to a hashable canonical tuple (defaults filled, types pinned).
  The tuple *is* the config hash: equal tuples are equal queries.
* :class:`LRUCache` is the result cache.  Keys are
  ``(models digest, schema version, canonical config, sigmas)`` so a hot
  reload of ``models.json`` invalidates by construction -- stale entries can
  never be served, they simply stop being referenced and age out.
* :class:`ModelHandle` is an immutable snapshot of one loaded ``models.json``
  (predictor + content digest + availability set).  Hot reload builds a new
  handle and swaps it with a single attribute assignment; any batch that
  captured the old handle keeps serving it to completion, so every response
  in a batch is stamped with the digest that actually produced it.

Cached values hold only the numeric results ``(seconds, lower, upper,
residual_std)``; the config echo in a response row always comes from the
incoming request, so two configs that canonicalize identically but spell
extra keys differently still get faithful echoes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.modeling.features import TECHNIQUES
from repro.reporting.predictor import DEFAULT_INTERVAL_SIGMAS, Predictor
from repro.reporting.suite import MODELS_SCHEMA_VERSION, ModelSuite

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "RENDER_DEFAULTS",
    "ServingError",
    "canonical_config",
    "LRUCache",
    "ModelHandle",
    "ServingCore",
]

#: Default maximum number of cached prediction results.
DEFAULT_CACHE_SIZE = 4096

#: Defaults filled into render configurations (mirrors the ``predict`` CLI).
RENDER_DEFAULTS = {
    "num_tasks": 32,
    "cells_per_task": 200,
    "image_width": 1024,
    "image_height": 1024,
    "samples_in_depth": 1000,
    "include_build": True,
}

#: Result fields attached to every response row, in canonical order.
RESULT_FIELDS = ("seconds", "lower", "upper", "residual_std")


class ServingError(Exception):
    """A structured request failure (JSON error payload + machine-readable code)."""

    def __init__(self, code: str, message: str, **detail) -> None:
        super().__init__(message)
        self.code = code
        self.detail = detail

    def payload(self) -> dict:
        """The JSON error object clients (and the CLI) receive."""
        error = {"code": self.code, "message": str(self)}
        error.update(self.detail)
        return {"error": error}


def _positive_int(config: dict, key: str, default: int) -> int:
    value = config.get(key, default)
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise ServingError(
            "invalid-configuration", f"configuration key {key!r} must be an integer, got {value!r}"
        ) from None
    if value < 1:
        raise ServingError("invalid-configuration", f"configuration key {key!r} must be positive")
    return value


def canonical_config(config: dict) -> tuple:
    """Validate one configuration dict and reduce it to its canonical tuple.

    Render configurations canonicalize to ``("render", architecture,
    technique, num_tasks, cells_per_task, image_width, image_height,
    samples_in_depth, include_build)``; Eq. 5.5 queries to ``("compositing",
    average_active_pixels, pixels)``.  The tuple is the cache-key identity of
    the query: two dicts spelling the same configuration (defaults implicit
    or explicit, extra annotation keys, int-vs-float spellings) canonicalize
    identically.
    """
    if not isinstance(config, dict):
        raise ServingError(
            "invalid-configuration", f"each configuration must be a JSON object, got {type(config).__name__}"
        )
    technique = config.get("technique")
    if technique == "compositing":
        missing = [key for key in ("average_active_pixels", "pixels") if key not in config]
        if missing:
            raise ServingError(
                "invalid-configuration",
                "compositing configurations need 'average_active_pixels' and 'pixels' keys",
                missing=missing,
            )
        try:
            average = float(config["average_active_pixels"])
            pixels = int(config["pixels"])
        except (TypeError, ValueError):
            raise ServingError(
                "invalid-configuration",
                "compositing configurations need numeric 'average_active_pixels' and 'pixels'",
            ) from None
        return ("compositing", average, pixels)
    if technique not in TECHNIQUES:
        raise ServingError(
            "invalid-configuration",
            f"unknown technique {technique!r}; choose from {list(TECHNIQUES) + ['compositing']}",
        )
    architecture = config.get("architecture")
    if not isinstance(architecture, str) or not architecture:
        raise ServingError("invalid-configuration", "configurations need a non-empty 'architecture'")
    return (
        "render",
        architecture,
        technique,
        _positive_int(config, "num_tasks", RENDER_DEFAULTS["num_tasks"]),
        _positive_int(config, "cells_per_task", RENDER_DEFAULTS["cells_per_task"]),
        _positive_int(config, "image_width", RENDER_DEFAULTS["image_width"]),
        _positive_int(config, "image_height", RENDER_DEFAULTS["image_height"]),
        _positive_int(config, "samples_in_depth", RENDER_DEFAULTS["samples_in_depth"]),
        bool(config.get("include_build", RENDER_DEFAULTS["include_build"])),
    )


class LRUCache:
    """A counting LRU result cache; ``maxsize <= 0`` disables caching entirely."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: dict = {}

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        """The cached value, or ``None`` on a miss (values are never ``None``)."""
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        # Re-insertion moves the key to the MRU end (dicts preserve order).
        del self._data[key]
        self._data[key] = value
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        if self.maxsize <= 0:
            return
        self._data.pop(key, None)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.pop(next(iter(self._data)))
            self.evictions += 1

    def stats(self) -> dict:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass(frozen=True)
class ModelHandle:
    """One immutable loaded ``models.json``: the unit hot reload swaps atomically."""

    predictor: Predictor
    digest: str
    path: str
    generation: int
    schema: int = MODELS_SCHEMA_VERSION
    available: frozenset = field(default_factory=frozenset)
    has_compositing: bool = False

    @classmethod
    def from_bytes(cls, data: bytes, path: str, generation: int = 0) -> "ModelHandle":
        """Build a handle from raw ``models.json`` bytes (the watcher's entry point)."""
        import hashlib

        suite = ModelSuite.from_payload(json.loads(data))
        return cls(
            predictor=Predictor(suite),
            digest=hashlib.sha256(data).hexdigest(),
            path=str(path),
            generation=generation,
            available=frozenset(suite.entries),
            has_compositing=suite.compositing is not None,
        )

    @classmethod
    def load(cls, path: str | Path, generation: int = 0) -> "ModelHandle":
        return cls.from_bytes(Path(path).read_bytes(), str(path), generation)

    def missing_slice(self, canon: tuple) -> tuple[str, str] | None:
        """The ``(architecture, technique)`` this handle cannot serve, if any."""
        if canon[0] == "compositing":
            return None if self.has_compositing else ("-", "compositing")
        key = (canon[1], canon[2])
        return None if key in self.available else key

    def availability(self) -> list[list[str]]:
        """Sorted JSON-friendly list of servable ``(architecture, technique)`` keys."""
        keys = sorted(self.available)
        if self.has_compositing:
            keys.append(("-", "compositing"))
        return [list(key) for key in keys]


class ServingCore:
    """Cache + vectorized group execution over an atomically swappable handle."""

    def __init__(
        self,
        handle: ModelHandle,
        cache_size: int = DEFAULT_CACHE_SIZE,
        default_sigmas: float = DEFAULT_INTERVAL_SIGMAS,
    ) -> None:
        self._handle = handle
        self.cache = LRUCache(cache_size)
        self.default_sigmas = float(default_sigmas)
        self.predictions_served = 0

    @classmethod
    def from_path(
        cls,
        path: str | Path,
        cache_size: int = DEFAULT_CACHE_SIZE,
        default_sigmas: float = DEFAULT_INTERVAL_SIGMAS,
    ) -> "ServingCore":
        return cls(ModelHandle.load(path), cache_size=cache_size, default_sigmas=default_sigmas)

    @property
    def handle(self) -> ModelHandle:
        """The current handle; capture it once per batch for torn-read-free serving."""
        return self._handle

    def swap(self, handle: ModelHandle) -> None:
        """Atomically install a new handle (a single attribute assignment)."""
        self._handle = handle

    # -- the request path ----------------------------------------------------------------
    def predict_canonical(
        self, canon: list[tuple], sigmas: float | None = None, handle: ModelHandle | None = None
    ) -> list[tuple[float, float, float, float]]:
        """Serve canonical configs: cache lookups, then one vectorized call per group.

        Returns one ``(seconds, lower, upper, residual_std)`` tuple per input,
        in input order.  Raises :class:`ServingError` (``unknown-model``) when
        the handle cannot serve a referenced slice -- callers that need
        per-request error isolation (the micro-batcher) pre-screen with
        :meth:`ModelHandle.missing_slice`.
        """
        handle = handle or self._handle
        sigmas = self.default_sigmas if sigmas is None else float(sigmas)
        results: list = [None] * len(canon)
        groups: dict[tuple, list[int]] = {}
        cache = self.cache
        for index, key in enumerate(canon):
            cached = cache.get((handle.digest, handle.schema, key, sigmas))
            if cached is not None:
                results[index] = cached
                continue
            group = ("compositing",) if key[0] == "compositing" else (key[1], key[2], key[8])
            groups.setdefault(group, []).append(index)
        for group, indices in groups.items():
            batch = self._predict_group(handle, group, [canon[i] for i in indices], sigmas)
            for position, index in enumerate(indices):
                value = (
                    float(batch.seconds[position]),
                    float(batch.lower[position]),
                    float(batch.upper[position]),
                    float(batch.residual_std),
                )
                results[index] = value
                cache.put((handle.digest, handle.schema, canon[index], sigmas), value)
        self.predictions_served += len(canon)
        return results

    def _predict_group(self, handle: ModelHandle, group: tuple, canon: list[tuple], sigmas: float):
        missing = handle.missing_slice(canon[0])
        if missing is not None:
            raise ServingError(
                "unknown-model",
                f"no fitted model for ({missing[0]!r}, {missing[1]!r})",
                architecture=missing[0],
                technique=missing[1],
                available=handle.availability(),
                models_digest=handle.digest,
            )
        if group[0] == "compositing":
            return handle.predictor.predict_compositing(
                average_active_pixels=np.array([key[1] for key in canon], dtype=np.float64),
                pixels=np.array([key[2] for key in canon], dtype=np.float64),
                sigmas=sigmas,
            )
        architecture, technique, include_build = group
        return handle.predictor.predict_configurations(
            architecture,
            technique,
            num_tasks=np.array([key[3] for key in canon], dtype=np.float64),
            cells_per_task=np.array([key[4] for key in canon], dtype=np.float64),
            image_width=np.array([key[5] for key in canon], dtype=np.float64),
            image_height=np.array([key[6] for key in canon], dtype=np.float64),
            samples_in_depth=np.array([key[7] for key in canon], dtype=np.float64),
            include_build=include_build,
            sigmas=sigmas,
        )

    def predict_rows(
        self, configs: list[dict], sigmas: float | None = None, handle: ModelHandle | None = None
    ) -> tuple[list[dict], dict]:
        """The CLI-facing request path: config dicts in, echo-carrying rows out.

        Each row is the input configuration plus ``seconds``/``lower``/
        ``upper``/``residual_std``; ``meta`` carries the serving digest.  Byte
        determinism contract: the numeric fields of a row depend only on the
        configuration, the handle, and ``sigmas`` -- never on batch
        composition, arrival order, or cache state.
        """
        handle = handle or self._handle
        canon = [canonical_config(config) for config in configs]
        results = self.predict_canonical(canon, sigmas=sigmas, handle=handle)
        rows = [
            {**config, **dict(zip(RESULT_FIELDS, result))}
            for config, result in zip(configs, results)
        ]
        return rows, {"models_digest": handle.digest, "generation": handle.generation}

    def stats(self) -> dict:
        handle = self._handle
        return {
            "models": {
                "path": handle.path,
                "digest": handle.digest,
                "schema": handle.schema,
                "generation": handle.generation,
                "available": handle.availability(),
            },
            "cache": self.cache.stats(),
            "predictions_served": self.predictions_served,
        }
