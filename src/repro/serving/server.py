"""The asyncio HTTP/1.1 prediction server (stdlib only, pipelining-aware).

One event loop, no threads, no third-party dependencies.  Endpoints:

* ``POST /predict`` -- body is a configuration object, a JSON list of them,
  or ``{"configs": [...], "sigmas": x}``.  The response's ``predictions``
  rows are **positional** (row *i* answers configuration *i*) and carry only
  the numeric result fields, plus the ``models_digest``/``generation`` of
  the handle snapshot that produced them; clients that want echoes pair rows
  with their own request (the ``predict`` CLI does exactly that).  Response
  bodies are built from fixed-order templates whose bytes equal
  ``json.dumps(..., sort_keys=True, separators=(",", ":"))`` -- hand
  serialization keeps the per-request cost off the micro-batched hot path
  without giving up canonical JSON.
* ``GET /stats`` -- models digest/generation, cache hit/miss/eviction
  counters, batching histogram, request counters, uptime.
* ``GET /healthz`` -- liveness plus the current digest.
* ``POST /reload`` -- force a ``models.json`` digest check right now (the
  watcher task does the same on a poll interval).

Connections are **pipelining-aware**: the read loop parses every complete
request in its buffer without awaiting responses, so a client that pipelines
N single-config requests hands the micro-batcher N configurations in one
window.  Responses are delivered through per-connection ordered slots
(HTTP/1.1 requires in-order responses) and written coalesced -- one
``writer.write`` per flushed run of ready responses.

Hot reload: a watcher task polls the ``models.json`` path; when the file's
bytes hash to a new digest, a fresh :class:`~repro.serving.core.ModelHandle`
is built and swapped in with one assignment.  In-flight batches captured the
old handle and finish against it -- no request is dropped, no response mixes
two suites, and every response says which digest served it.  A file that
fails to parse (e.g. a torn mid-write read) is skipped and retried on the
next poll; the old suite keeps serving.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

from repro.serving.batching import DEFAULT_MAX_BATCH, DEFAULT_MAX_DELAY_US, BatchRequest, MicroBatcher
from repro.serving.core import DEFAULT_CACHE_SIZE, ModelHandle, ServingCore, ServingError, canonical_config

__all__ = ["PredictionServer", "start_server", "build_parser", "main"]

#: Default watcher poll interval (seconds).
DEFAULT_RELOAD_POLL_S = 0.5

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed"}


def _response_bytes(status: int, body: bytes) -> bytes:
    return (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n\r\n"
    ).encode() + body


def _json_response(status: int, payload: dict) -> bytes:
    return _response_bytes(status, json.dumps(payload, sort_keys=True, separators=(",", ":")).encode())


def _error_response(status: int, code: str, message: str) -> bytes:
    return _json_response(status, {"error": {"code": code, "message": message}})


class _Connection:
    """Ordered response slots for one pipelined HTTP/1.1 connection."""

    __slots__ = ("writer", "slots", "closed")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.slots: list = []  # each slot: [bytes | None]; filled in request order
        self.closed = False

    def reserve(self) -> list:
        slot = [None]
        self.slots.append(slot)
        return slot

    def fill(self, slot: list, data: bytes) -> None:
        """Complete one slot and write every leading run of ready responses."""
        slot[0] = data
        if self.closed:
            self.slots.clear()
            return
        ready = 0
        while ready < len(self.slots) and self.slots[ready][0] is not None:
            ready += 1
        if ready:
            chunks = [s[0] for s in self.slots[:ready]]
            del self.slots[:ready]
            self.writer.write(b"".join(chunks))


class PredictionServer:
    """The serving tier: core + micro-batcher + HTTP front end + reload watcher."""

    def __init__(
        self,
        core: ServingCore,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay_us: int = DEFAULT_MAX_DELAY_US,
        reload_poll_s: float = DEFAULT_RELOAD_POLL_S,
        watch: bool = True,
    ) -> None:
        self.core = core
        self.host = host
        self.port = port
        self.batcher = MicroBatcher(core, max_batch=max_batch, max_delay_us=max_delay_us)
        self.reload_poll_s = reload_poll_s
        self.watch = watch
        self.requests = 0
        self.errors = 0
        self.reloads = 0
        self.reload_errors = 0
        self._last_error = ""
        self.started_at = time.monotonic()
        self._server: asyncio.AbstractServer | None = None
        self._watcher: asyncio.Task | None = None
        self._last_stat: tuple | None = None

    # -- lifecycle -----------------------------------------------------------------------
    async def start(self) -> "PredictionServer":
        self._server = await asyncio.start_server(self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        try:
            stat = os.stat(self.core.handle.path)
            self._last_stat = (stat.st_mtime_ns, stat.st_size)
        except OSError:
            self._last_stat = None
        if self.watch:
            self._watcher = asyncio.get_running_loop().create_task(self._watch())
        return self

    async def close(self) -> None:
        if self._watcher is not None:
            self._watcher.cancel()
            try:
                await self._watcher
            except asyncio.CancelledError:
                pass
            self._watcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- hot reload ----------------------------------------------------------------------
    async def _watch(self) -> None:
        while True:
            await asyncio.sleep(self.reload_poll_s)
            self.maybe_reload()

    def maybe_reload(self) -> bool:
        """Swap in ``models.json`` if its bytes changed; never drops the old suite."""
        path = self.core.handle.path
        try:
            stat = os.stat(path)
        except OSError:
            return False
        signature = (stat.st_mtime_ns, stat.st_size)
        if signature == self._last_stat:
            return False
        try:
            data = Path(path).read_bytes()
            handle = ModelHandle.from_bytes(data, path, generation=self.core.handle.generation + 1)
        except (OSError, ValueError, KeyError) as error:
            # A torn mid-write read or an invalid file: keep serving the old
            # suite and retry on the next poll (the stat signature is only
            # committed on success).
            self.reload_errors += 1
            self._last_error = str(error)
            return False
        self._last_stat = signature
        if handle.digest == self.core.handle.digest:
            return False
        self.core.swap(handle)
        self.reloads += 1
        return True

    # -- connection handling -------------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        buffer = b""
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                buffer = (buffer + chunk) if buffer else chunk
                while True:
                    header_end = buffer.find(b"\r\n\r\n")
                    if header_end < 0:
                        break
                    header = buffer[:header_end]
                    length = 0
                    lowered = header.lower()
                    marker = lowered.find(b"content-length:")
                    if marker >= 0:
                        line_end = lowered.find(b"\r\n", marker)
                        if line_end < 0:
                            line_end = len(lowered)
                        length = int(lowered[marker + 15 : line_end])
                    total = header_end + 4 + length
                    if len(buffer) < total:
                        break
                    body = buffer[header_end + 4 : total]
                    buffer = buffer[total:]
                    request_line = header.split(b"\r\n", 1)[0]
                    self._route(request_line, body, conn)
                await writer.drain()
            # EOF: let in-flight batched responses finish before closing.
            while conn.slots:
                self.batcher.flush()
                if conn.slots:
                    await asyncio.sleep(0)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            conn.closed = True
            conn.slots.clear()
            # transport.close() flushes buffered writes before closing; not
            # awaiting wait_closed keeps server shutdown cancellation quiet.
            try:
                writer.close()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- routing (fully synchronous: responses land in ordered slots) -------------------
    def _route(self, request_line: bytes, body: bytes, conn: _Connection) -> None:
        self.requests += 1
        slot = conn.reserve()
        try:
            method, target = request_line.split(b" ", 2)[:2]
        except ValueError:
            self.errors += 1
            conn.fill(slot, _error_response(400, "bad-request", "malformed request line"))
            return
        if target == b"/predict":
            if method != b"POST":
                self.errors += 1
                conn.fill(slot, _error_response(405, "method-not-allowed", "POST /predict"))
                return
            self._route_predict(body, conn, slot)
            return
        if target == b"/stats":
            conn.fill(slot, _json_response(200, self.stats()))
            return
        if target == b"/healthz":
            handle = self.core.handle
            conn.fill(slot, _json_response(200, {"status": "ok", "models_digest": handle.digest}))
            return
        if target == b"/reload":
            reloaded = self.maybe_reload()
            conn.fill(
                slot,
                _json_response(
                    200, {"reloaded": reloaded, "models_digest": self.core.handle.digest}
                ),
            )
            return
        self.errors += 1
        conn.fill(
            slot, _error_response(404, "not-found", f"no route {target.decode(errors='replace')}")
        )

    def _route_predict(self, body: bytes, conn: _Connection, slot: list) -> None:
        try:
            payload = json.loads(body)
        except (ValueError, UnicodeDecodeError):
            self.errors += 1
            conn.fill(slot, _error_response(400, "bad-request", "body is not valid JSON"))
            return
        sigmas = None
        if isinstance(payload, dict) and "configs" in payload:
            configs = payload["configs"]
            sigmas = payload.get("sigmas")
        elif isinstance(payload, dict):
            configs = [payload]
        else:
            configs = payload
        if not isinstance(configs, list) or not configs:
            self.errors += 1
            conn.fill(
                slot,
                _error_response(400, "bad-request", "body must hold at least one configuration"),
            )
            return
        try:
            canon = [canonical_config(config) for config in configs]
            if sigmas is not None:
                sigmas = float(sigmas)
        except ServingError as error:
            self.errors += 1
            conn.fill(slot, _json_response(400, error.payload()))
            return
        except (TypeError, ValueError):
            self.errors += 1
            conn.fill(slot, _error_response(400, "bad-request", "sigmas must be a number"))
            return

        def on_result(results: list[tuple], meta: dict) -> None:
            # Fixed-order templates; byte-equal to json.dumps(sort_keys=True,
            # separators=(",", ":")) of the same payload (pinned by a test).
            rows = ",".join(
                f'{{"lower":{result[1]!r},"residual_std":{result[3]!r},'
                f'"seconds":{result[0]!r},"upper":{result[2]!r}}}'
                for result in results
            )
            body = (
                f'{{"generation":{meta["generation"]},'
                f'"models_digest":"{meta["models_digest"]}","predictions":[{rows}]}}'
            ).encode()
            conn.fill(slot, _response_bytes(200, body))

        def on_error(error: ServingError, meta: dict) -> None:
            self.errors += 1
            status = 404 if error.code == "unknown-model" else 400
            conn.fill(slot, _json_response(status, error.payload()))

        self.batcher.submit(BatchRequest(configs, canon, sigmas, on_result, on_error))

    # -- introspection -------------------------------------------------------------------
    def stats(self) -> dict:
        payload = self.core.stats()
        payload["models"]["reloads"] = self.reloads
        payload["models"]["reload_errors"] = self.reload_errors
        payload["batching"] = self.batcher.stats()
        payload["requests"] = {"total": self.requests, "errors": self.errors}
        payload["uptime_s"] = round(time.monotonic() - self.started_at, 3)
        return payload


async def start_server(
    models: str | Path,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch: int = DEFAULT_MAX_BATCH,
    max_delay_us: int = DEFAULT_MAX_DELAY_US,
    cache_size: int = DEFAULT_CACHE_SIZE,
    reload_poll_s: float = DEFAULT_RELOAD_POLL_S,
    watch: bool = True,
) -> PredictionServer:
    """Load ``models.json``, bind, and start serving (port 0 = ephemeral)."""
    core = ServingCore.from_path(models, cache_size=cache_size)
    server = PredictionServer(
        core,
        host=host,
        port=port,
        max_batch=max_batch,
        max_delay_us=max_delay_us,
        reload_poll_s=reload_poll_s,
        watch=watch,
    )
    return await server.start()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Micro-batched, cached, hot-reloading prediction server over a models.json.",
    )
    parser.add_argument("--models", required=True, help="models.json written by `report` or ModelSuite.save")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8766, help="0 binds an ephemeral port")
    parser.add_argument("--max-batch", type=int, default=DEFAULT_MAX_BATCH, help="flush threshold (configs)")
    parser.add_argument(
        "--max-delay-us", type=int, default=DEFAULT_MAX_DELAY_US, help="accumulation window (microseconds)"
    )
    parser.add_argument("--cache-size", type=int, default=DEFAULT_CACHE_SIZE, help="LRU entries (0 disables)")
    parser.add_argument(
        "--reload-poll",
        type=float,
        default=DEFAULT_RELOAD_POLL_S,
        help="models.json watch interval (seconds)",
    )
    parser.add_argument("--no-watch", action="store_true", help="disable the hot-reload watcher")
    return parser


async def _serve_forever(args: argparse.Namespace) -> None:
    server = await start_server(
        args.models,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_delay_us=args.max_delay_us,
        cache_size=args.cache_size,
        reload_poll_s=args.reload_poll,
        watch=not args.no_watch,
    )
    handle = server.core.handle
    print(
        f"serving http://{server.host}:{server.port} models={handle.path} "
        f"digest={handle.digest[:12]} max_batch={server.batcher.max_batch} "
        f"max_delay_us={server.batcher.max_delay_us}",
        flush=True,
    )
    try:
        await asyncio.Event().wait()
    finally:
        await server.close()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_serve_forever(args))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
