"""``python -m repro.serving`` -- same entry point as ``python -m repro.serve``."""

from repro.serving.server import main

if __name__ == "__main__":
    raise SystemExit(main())
