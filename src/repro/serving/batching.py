"""The micro-batching queue: bounded-window accumulation, one vectorized flush.

Concurrent requests enqueue synchronously (:meth:`MicroBatcher.submit` never
awaits); the first pending request arms a ``max_delay_us`` timer, and the
batch flushes early the moment ``max_batch`` configurations have accumulated.
A flush captures the serving core's current :class:`~repro.serving.core.ModelHandle`
exactly once, pre-screens each request against that handle's availability (so one
request's unknown slice cannot fail its batch-mates), merges the surviving
requests per ``sigmas`` value, and runs one
:meth:`~repro.serving.core.ServingCore.predict_canonical` call per group --
the amortization that makes per-prediction cost approach the batch
:class:`~repro.reporting.predictor.Predictor`'s.

Batching-window semantics:

* Requests are **atomic**: a request's configurations never split across
  batches, so ``max_batch`` is a flush *threshold*, not a hard cap -- a batch
  may overshoot by the size of its last request.
* Results are **delivered through callbacks** (``on_result(rows, meta)`` /
  ``on_error(error, meta)``), not futures: the HTTP server fills per-connection
  response slots directly from the flush, which keeps the per-request hot path
  free of event-loop round trips.
* Determinism: the numeric results of a configuration depend only on
  ``(handle, config, sigmas)``.  Arrival order and batch split decide *when*
  a response is produced, never *what* it contains.

``max_batch <= 1`` disables accumulation entirely: every submit flushes
immediately, which is the per-request no-batching baseline the
``bench_serving_throughput`` benchmark measures the speedup against.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable

from repro.serving.core import ServingCore, ServingError

__all__ = ["BatchRequest", "MicroBatcher", "DEFAULT_MAX_BATCH", "DEFAULT_MAX_DELAY_US"]

#: Default flush threshold (configurations per batch).
DEFAULT_MAX_BATCH = 512

#: Default accumulation window in microseconds.
DEFAULT_MAX_DELAY_US = 2000


@dataclass
class BatchRequest:
    """One enqueued request: pre-canonicalized configs plus delivery callbacks."""

    configs: list[dict]
    canon: list[tuple]
    sigmas: float | None
    on_result: Callable[[list[tuple], dict], None]
    on_error: Callable[[ServingError, dict], None]


@dataclass
class MicroBatcher:
    """Accumulate requests for a bounded window, flush as one vectorized call."""

    core: ServingCore
    max_batch: int = DEFAULT_MAX_BATCH
    max_delay_us: int = DEFAULT_MAX_DELAY_US
    batches_flushed: int = 0
    configs_flushed: int = 0
    histogram: dict[int, int] = field(default_factory=dict)
    _pending: list[BatchRequest] = field(default_factory=list)
    _pending_configs: int = 0
    _timer: object = None

    @property
    def enabled(self) -> bool:
        return self.max_batch > 1

    def submit(self, request: BatchRequest) -> None:
        """Enqueue one request; flushes inline when the threshold is reached."""
        self._pending.append(request)
        self._pending_configs += len(request.canon)
        if not self.enabled or self._pending_configs >= self.max_batch:
            self.flush()
        elif self._timer is None:
            loop = asyncio.get_running_loop()
            self._timer = loop.call_later(self.max_delay_us / 1e6, self.flush)

    def flush(self) -> None:
        """Serve everything pending against one captured handle snapshot."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        batch_configs, self._pending_configs = self._pending_configs, 0
        self.batches_flushed += 1
        self.configs_flushed += batch_configs
        self.histogram[batch_configs] = self.histogram.get(batch_configs, 0) + 1

        handle = self.core.handle  # the swap point: one snapshot serves the whole batch
        meta = {"models_digest": handle.digest, "generation": handle.generation}

        # Pre-screen per request so an unknown slice only fails its own request.
        servable: list[BatchRequest] = []
        for request in batch:
            missing = next(
                (m for m in (handle.missing_slice(c) for c in request.canon) if m is not None), None
            )
            if missing is not None:
                request.on_error(
                    ServingError(
                        "unknown-model",
                        f"no fitted model for ({missing[0]!r}, {missing[1]!r})",
                        architecture=missing[0],
                        technique=missing[1],
                        available=handle.availability(),
                        models_digest=handle.digest,
                    ),
                    meta,
                )
                continue
            servable.append(request)

        # Merge per sigmas value (None = server default) and serve each merge
        # with a single vectorized core call.
        by_sigmas: dict[float | None, list[BatchRequest]] = {}
        for request in servable:
            by_sigmas.setdefault(request.sigmas, []).append(request)
        for sigmas, requests in by_sigmas.items():
            merged: list[tuple] = []
            for request in requests:
                merged.extend(request.canon)
            try:
                results = self.core.predict_canonical(merged, sigmas=sigmas, handle=handle)
            except ServingError as error:
                for request in requests:
                    request.on_error(error, meta)
                continue
            offset = 0
            for request in requests:
                count = len(request.canon)
                request.on_result(results[offset : offset + count], meta)
                offset += count

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "max_batch": self.max_batch,
            "max_delay_us": self.max_delay_us,
            "batches": self.batches_flushed,
            "configs": self.configs_flushed,
            "pending": self._pending_configs,
            "histogram": {str(size): count for size, count in sorted(self.histogram.items())},
        }
