"""The prediction-serving tier: micro-batched, cached, hot-reloading model service.

``repro.serving`` turns the vectorized batch
:class:`~repro.reporting.predictor.Predictor` into a long-running service
(stdlib ``asyncio`` + HTTP/1.1, no third-party dependencies):

* :mod:`repro.serving.core` -- the synchronous request path shared by the
  server and the ``python -m repro.study predict`` CLI: configuration
  canonicalization, the LRU result cache keyed by
  ``(models digest, schema, canonical config, sigmas)``, vectorized group
  execution, and the immutable :class:`~repro.serving.core.ModelHandle`
  snapshots hot reload swaps atomically.
* :mod:`repro.serving.batching` -- the micro-batching queue: concurrent
  requests accumulate for a bounded window (``max_batch`` / ``max_delay_us``)
  and flush as one vectorized predictor call.
* :mod:`repro.serving.server` -- the asyncio HTTP/1.1 front end
  (``POST /predict``, ``GET /stats``, ``GET /healthz``, ``POST /reload``)
  with pipelining-aware connections and a ``models.json`` digest watcher.
* :mod:`repro.serving.client` -- a minimal stdlib client used by the tests
  and the load-generation benchmark.

Start a server with ``python -m repro.serve --models models.json``.  Served
predictions are bit-identical to ``Predictor.predict_configurations`` on the
same inputs -- the differential oracle the serving tests and the
``bench_serving_throughput`` benchmark both enforce.
"""

from repro.serving.core import (
    LRUCache,
    ModelHandle,
    ServingCore,
    ServingError,
    canonical_config,
)

__all__ = ["LRUCache", "ModelHandle", "ServingCore", "ServingError", "canonical_config"]
