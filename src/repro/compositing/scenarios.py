"""Per-rank scene factories for thousand-rank streaming composites.

The streaming drivers in :mod:`repro.compositing.algorithms` never hold the
whole rank population; they pull each rank's :class:`RunImage` from a factory
callable on demand.  This module provides the study's synthetic scene
factories.  All of them are *deterministic per rank* -- calling
``factory(rank)`` twice yields byte-identical images -- which is what the
cohort-size-invariance oracle relies on (two runs with different
``max_live_ranks`` regenerate the same inputs).

Three scenario families widen the scale-study matrix:

* ``uniform`` -- every rank covers the same fraction of the image at random
  positions; the classic equal-block decomposition all prior PRs assumed.
* ``amr`` -- coverage per rank drawn from the
  :class:`~repro.simulations.amr.AmrProxy` refinement-level model: most
  ranks are coarse and sparse, a refined minority is dense, so per-rank
  wire bytes and merge load become strongly nonuniform.
* ``camera-orbit`` -- ranks hold blocks of a 3D lattice viewed through one
  frame of a :class:`~repro.rendering.rays.CameraPath` orbit; each rank's
  footprint is the screen-space projection of its block, so the active-pixel
  distribution shifts as the camera flies around the decomposition.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.compositing.runimage import RunImage
from repro.geometry.transforms import Camera
from repro.rendering.rays import CameraPath
from repro.simulations.amr import AmrProxy
from repro.util.rng import default_rng

__all__ = [
    "SCENARIOS",
    "amr_scene",
    "camera_orbit_scene",
    "scene_factory",
    "synthetic_run_image",
    "uniform_scene",
]


def synthetic_run_image(
    rank: int,
    width: int,
    height: int,
    mode: str,
    coverage: float,
    rng: np.random.Generator,
) -> RunImage:
    """One rank's synthetic sub-image: ``coverage`` of the pixels, random runs.

    Active pixels are drawn without replacement (so runs form naturally from
    the density), colors are random, alpha is 1 in depth mode and 0.6 in
    over mode, and depth is uniform on ``[rank, rank + 1)`` so the per-rank
    depth bands overlap neighboring ranks without being degenerate.
    """
    num_pixels = width * height
    count = int(np.clip(round(coverage * num_pixels), 0, num_pixels))
    if count == 0:
        return RunImage.from_arrays(
            np.empty(0, dtype=np.int64), np.empty((0, 4)), np.empty(0), width, height, key=rank
        )
    pixels = np.sort(rng.choice(num_pixels, size=count, replace=False)).astype(np.int64)
    alpha = 1.0 if mode == "depth" else 0.6
    rgba = np.column_stack([rng.random((count, 3)), np.full(count, alpha)])
    depth = rank + rng.random(count)
    return RunImage.from_arrays(pixels, rgba, depth, width, height, key=rank)


def uniform_scene(
    size: int,
    width: int,
    height: int,
    mode: str = "depth",
    seed: int = 2016,
    coverage: float = 0.08,
) -> Callable[[int], RunImage]:
    """Equal-coverage factory: every rank fills ``coverage`` of the image."""

    def factory(rank: int) -> RunImage:
        rng = default_rng(seed, "scale-scene", "uniform", size, rank)
        return synthetic_run_image(rank, width, height, mode, coverage, rng)

    return factory


def amr_scene(
    size: int,
    width: int,
    height: int,
    mode: str = "depth",
    seed: int = 2016,
    base_coverage: float = 0.02,
    max_level: int = 3,
) -> Callable[[int], RunImage]:
    """Nonuniform factory: per-rank coverage from the AMR refinement model."""
    proxy = AmrProxy(8, max_level=max_level, seed=seed)
    coverage = proxy.rank_coverage(size, base_coverage=base_coverage)

    def factory(rank: int) -> RunImage:
        rng = default_rng(seed, "scale-scene", "amr", size, rank)
        return synthetic_run_image(rank, width, height, mode, float(coverage[rank]), rng)

    return factory


def _lattice_centers(size: int) -> np.ndarray:
    """Rank block centers on the smallest cubic lattice holding ``size`` blocks."""
    per_axis = 1
    while per_axis**3 < size:
        per_axis += 1
    ranks = np.arange(size)
    i = ranks % per_axis
    j = (ranks // per_axis) % per_axis
    k = ranks // (per_axis * per_axis)
    return (np.column_stack([i, j, k]) + 0.5) / per_axis


def camera_orbit_scene(
    size: int,
    width: int,
    height: int,
    mode: str = "depth",
    seed: int = 2016,
    frame: int = 0,
    num_frames: int = 60,
    coverage: float = 0.05,
) -> Callable[[int], RunImage]:
    """Time-varying factory: rank footprints projected through an orbit frame.

    Each rank owns one block of a cubic lattice over ``[0, 1]^3``; its active
    pixels form a disc around the block center's screen-space projection at
    ``frame`` of a :class:`CameraPath` orbit, and its fragments sit at the
    camera-space distance of the block.  Blocks behind the camera or outside
    the frustum contribute empty images -- exactly the skew a fly-around
    induces on a real decomposition.
    """
    template = Camera(
        position=np.array([0.5, 0.5, 2.2]),
        look_at=np.array([0.5, 0.5, 0.5]),
        width=width,
        height=height,
    )
    camera = CameraPath(template, num_frames=num_frames).camera_at(frame)
    centers = _lattice_centers(size)
    clip = np.concatenate([centers, np.ones((size, 1))], axis=1)
    clip = clip @ (camera.projection_matrix() @ camera.view_matrix()).T
    in_front = clip[:, 3] > 1e-9
    ndc = np.where(in_front[:, None], clip[:, :3] / np.maximum(clip[:, 3:4], 1e-9), 2.0)
    screen_x = (ndc[:, 0] + 1.0) * 0.5 * width
    screen_y = (1.0 - ndc[:, 1]) * 0.5 * height
    distance = np.linalg.norm(centers - camera.position, axis=1)
    # Footprint radius: coverage at the orbit radius, shrinking with distance.
    orbit_radius = float(np.linalg.norm(template.position - template.look_at))
    base_radius = np.sqrt(coverage * width * height / np.pi)
    radius = base_radius * orbit_radius / np.maximum(distance, 1e-9)

    def factory(rank: int) -> RunImage:
        if not in_front[rank]:
            return RunImage.from_arrays(
                np.empty(0, dtype=np.int64), np.empty((0, 4)), np.empty(0),
                width, height, key=rank,
            )
        rng = default_rng(seed, "scale-scene", "camera-orbit", size, frame, rank)
        cx, cy, r = screen_x[rank], screen_y[rank], radius[rank]
        x_low = max(int(np.floor(cx - r)), 0)
        x_high = min(int(np.ceil(cx + r)) + 1, width)
        y_low = max(int(np.floor(cy - r)), 0)
        y_high = min(int(np.ceil(cy + r)) + 1, height)
        if x_low >= x_high or y_low >= y_high:
            return RunImage.from_arrays(
                np.empty(0, dtype=np.int64), np.empty((0, 4)), np.empty(0),
                width, height, key=rank,
            )
        xs = np.arange(x_low, x_high)
        ys = np.arange(y_low, y_high)
        inside = ((xs[None, :] - cx) ** 2 + (ys[:, None] - cy) ** 2) <= r * r
        pixels = (ys[:, None] * width + xs[None, :])[inside].astype(np.int64)
        count = len(pixels)
        if count == 0:
            return RunImage.from_arrays(
                np.empty(0, dtype=np.int64), np.empty((0, 4)), np.empty(0),
                width, height, key=rank,
            )
        alpha = 1.0 if mode == "depth" else 0.6
        rgba = np.column_stack([rng.random((count, 3)), np.full(count, alpha)])
        depth = distance[rank] + 0.01 * rng.random(count)
        return RunImage.from_arrays(pixels, rgba, depth, width, height, key=rank)

    return factory


#: Scenario registry: name -> factory builder with the uniform signature
#: ``(size, width, height, mode, seed)``.
SCENARIOS: dict[str, Callable[..., Callable[[int], RunImage]]] = {
    "uniform": uniform_scene,
    "amr": amr_scene,
    "camera-orbit": camera_orbit_scene,
}


def scene_factory(
    name: str, size: int, width: int, height: int, mode: str = "depth", seed: int = 2016, **kwargs
) -> Callable[[int], RunImage]:
    """Build a per-rank factory for a named scenario."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown compositing scenario {name!r}; known: {sorted(SCENARIOS)}") from None
    return builder(size, width, height, mode=mode, seed=seed, **kwargs)
