"""The three sort-last exchange algorithms over run-length sub-images.

* :func:`direct_send` -- every rank is assigned one contiguous run of pixels
  and receives that run from every other rank in a single exchange round
  (Neumann 1993).
* :func:`binary_swap` -- log2(P) rounds of pairwise half-image exchanges
  (Ma et al. 1994); non-power-of-two task counts are handled with an initial
  fold phase that pairs up the trailing ranks.
* :func:`radix_k` -- the generalisation of Peterka et al. used by IceT and by
  the paper's experiments: the task count is factored into radices and each
  round performs a k-way exchange within groups of k ranks.

This is the *fast* data path: per-rank images are
:class:`~repro.compositing.runimage.RunImage` (contiguous active-pixel runs
with an SoA payload), a round's traffic is posted as one batched array-valued
:meth:`~repro.runtime.communicator.SimulatedCommunicator.exchange`, and a
round's merges resolve in one :func:`~repro.compositing.merge.merge_groups`
call -- O(rounds) array operations instead of O(pixels · pieces) Python work.
The communication pattern (who sends which run to whom, and where the round
boundaries fall) is identical to the dense reference drivers in
:mod:`repro.compositing.reference`, which the differential tests hold this
module to within 1e-10.

Ordering note: the OVER operator is only associative when every pairwise
merge combines fragments that are adjacent and contiguous in visibility
order.  Callers hand the algorithms their sub-images already sorted by
visibility (ascending ``RunImage.key``), and every merge folds group pieces
in ascending key order, exactly as the reference's ``_ordered_fold`` does.
"""

from __future__ import annotations

import numpy as np

from repro.compositing.merge import merge_groups
from repro.compositing.runimage import RunImage, payload_fragments
from repro.runtime.communicator import SimulatedCommunicator

__all__ = ["direct_send", "binary_swap", "radix_k", "assemble_at_root", "factor_radices"]


def _pixel_partition(num_pixels: int, parts: int) -> list[tuple[int, int]]:
    """Split ``[0, num_pixels)`` into ``parts`` near-equal contiguous runs."""
    edges = np.linspace(0, num_pixels, parts + 1).astype(np.int64)
    return [(int(edges[i]), int(edges[i + 1])) for i in range(parts)]


def factor_radices(size: int, target: int = 4) -> list[int]:
    """Factor a task count into radices no larger than ``target`` (prefer larger factors)."""
    if size < 1:
        raise ValueError("size must be positive")
    radices: list[int] = []
    remaining = size
    divisor = target
    while remaining > 1 and divisor >= 2:
        while remaining % divisor == 0:
            radices.append(divisor)
            remaining //= divisor
        divisor -= 1
    if remaining > 1:
        radices.append(remaining)
    return radices or [1]


def _mixed_radix_digits(rank: int, radices: list[int]) -> list[int]:
    """Digits of ``rank`` in the mixed-radix system defined by ``radices``."""
    digits = []
    for radix in radices:
        digits.append(rank % radix)
        rank //= radix
    return digits


def _replace_image(template: RunImage, merged: tuple[np.ndarray, np.ndarray, np.ndarray]) -> RunImage:
    """A new :class:`RunImage` holding ``merged`` fragments, keeping shape and key."""
    pixels, rgba, depth = merged
    return RunImage.from_arrays(pixels, rgba, depth, template.width, template.height, key=template.key)


def _with_depth(mode: str) -> bool:
    """Over-mode wire payloads drop the depth plane (the scalar key stands in)."""
    return mode == "depth"


def assemble_at_root(
    owned: dict[int, tuple[int, int]],
    images: list[RunImage],
    comm: SimulatedCommunicator,
    mode: str,
) -> RunImage:
    """Gather each rank's owned run at rank 0 and assemble the final run image.

    ``owned`` maps rank to its ``(start, stop)`` interval; the intervals tile
    ``[0, num_pixels)``, so concatenating the pieces (sorted by pixel) yields
    the complete composited image.
    """
    comm.next_round()
    sends = []
    for rank, (start, stop) in sorted(owned.items()):
        if rank == 0 or start >= stop:
            continue
        payload, nbytes = images[rank].piece_message(start, stop, with_depth=_with_depth(mode))
        sends.append((rank, 0, payload, nbytes))
    delivered = comm.exchange(sends)

    start, stop = owned.get(0, (0, 0))
    pieces = [images[0].fragments(start, stop)] if stop > start else []
    for _, payload in delivered.get(0, []):
        pixels, rgba, depth, _ = payload_fragments(payload)
        pieces.append((pixels, rgba, depth))
    pieces = [piece for piece in pieces if len(piece[0])]
    if not pieces:
        empty = np.empty(0, dtype=np.int64)
        return RunImage.from_arrays(empty, np.empty((0, 4)), np.empty(0), images[0].width, images[0].height)
    all_pixels = np.concatenate([piece[0] for piece in pieces])
    order = np.argsort(all_pixels, kind="stable")  # owned intervals are disjoint
    if mode == "depth":
        depth = np.concatenate([piece[2] for piece in pieces])[order]
    else:
        depth = np.zeros(len(all_pixels))  # over-mode depth lives in the keys
    return RunImage.from_arrays(
        all_pixels[order],
        np.concatenate([piece[1] for piece in pieces])[order],
        depth,
        images[0].width,
        images[0].height,
    )


def direct_send(
    images: list[RunImage], comm: SimulatedCommunicator, mode: str
) -> tuple[RunImage, int]:
    """Direct-send compositing; returns ``(final_image_at_root, merge_operations)``."""
    size = comm.size
    if len(images) != size:
        raise ValueError("need exactly one sub-image per rank")
    num_pixels = images[0].num_pixels
    partition = _pixel_partition(num_pixels, size)

    # One exchange round: every rank sends every other rank's run to its owner.
    edges = np.array([start for start, _ in partition] + [num_pixels], dtype=np.int64)
    sends = []
    for source in range(size):
        messages = images[source].piece_table(edges, with_depth=_with_depth(mode))
        for owner in range(size):
            if owner == source:
                continue
            start, stop = partition[owner]
            if start >= stop:
                continue
            payload, nbytes = messages[owner]
            sends.append((source, owner, payload, nbytes))
    delivered = comm.exchange(sends)

    # Every owner's fold resolves in one batched merge across all owners.
    groups = []
    for owner in range(size):
        start, stop = partition[owner]
        if start >= stop:
            continue
        own_pixels, own_rgba, own_depth = images[owner].fragments(start, stop)
        fragment_sets = [(owner, own_pixels, own_rgba, own_depth)]
        for source, payload in delivered.get(owner, []):
            pixels, rgba, depth, _ = payload_fragments(payload)
            fragment_sets.append((source, pixels, rgba, depth))
        groups.append((owner, fragment_sets))
    resolved, merges = merge_groups(groups, num_pixels, mode)
    for owner, _ in groups:
        images[owner] = _replace_image(images[owner], resolved[owner])

    owned = {rank: partition[rank] for rank in range(size)}
    final = assemble_at_root(owned, images, comm, mode)
    return final, merges


def binary_swap(
    images: list[RunImage], comm: SimulatedCommunicator, mode: str
) -> tuple[RunImage, int]:
    """Binary-swap compositing with a pairing fold for non-power-of-two task counts."""
    size = comm.size
    if len(images) != size:
        raise ValueError("need exactly one sub-image per rank")
    num_pixels = images[0].num_pixels
    merges = 0

    power = 1
    while power * 2 <= size:
        power *= 2
    extra = size - power

    # Fold phase: the trailing 2*extra ranks are merged pairwise so that the
    # remaining participants hold contiguous runs of the visibility order.
    participants = list(range(size - 2 * extra))
    if extra:
        pair_ranks = list(range(size - 2 * extra, size))
        pairs = list(zip(pair_ranks[0::2], pair_ranks[1::2]))
        sends = []
        for first, second in pairs:
            payload, nbytes = images[second].piece_message(0, num_pixels, with_depth=_with_depth(mode))
            sends.append((second, first, payload, nbytes))
        delivered = comm.exchange(sends)
        groups = []
        for first, second in pairs:
            own_pixels, own_rgba, own_depth = images[first].fragments(0, num_pixels)
            _, payload = delivered[first][0]
            pixels, rgba, depth, _ = payload_fragments(payload)
            groups.append((first, [(first, own_pixels, own_rgba, own_depth), (second, pixels, rgba, depth)]))
            participants.append(first)
        resolved, folded = merge_groups(groups, num_pixels, mode)
        merges += folded
        for first, _ in groups:
            images[first] = _replace_image(images[first], resolved[first])
        comm.next_round()
    assert len(participants) == power

    # Swap rounds over participant indices (participants are visibility-ordered).
    owned = {index: (0, num_pixels) for index in range(power)}
    rounds = int(np.log2(power)) if power > 1 else 0
    for round_index in range(rounds):
        bit = 1 << round_index
        sends = []
        for index in range(power):
            partner = index ^ bit
            start, stop = owned[index]
            middle = (start + stop) // 2
            keep_first = index < partner
            send_range = (middle, stop) if keep_first else (start, middle)
            payload, nbytes = images[participants[index]].piece_message(
                *send_range, with_depth=_with_depth(mode)
            )
            sends.append((participants[index], participants[partner], payload, nbytes))
        delivered = comm.exchange(sends)
        groups = []
        for index in range(power):
            partner = index ^ bit
            start, stop = owned[index]
            middle = (start + stop) // 2
            keep_first = index < partner
            keep_range = (start, middle) if keep_first else (middle, stop)
            rank = participants[index]
            _, payload = delivered[rank][0]
            pixels, rgba, depth, _ = payload_fragments(payload)
            own_pixels, own_rgba, own_depth = images[rank].fragments(*keep_range)
            groups.append(
                (index, [(index, own_pixels, own_rgba, own_depth), (partner, pixels, rgba, depth)])
            )
            owned[index] = keep_range
        resolved, folded = merge_groups(groups, num_pixels, mode)
        merges += folded
        for index, _ in groups:
            rank = participants[index]
            images[rank] = _replace_image(images[rank], resolved[index])
        comm.next_round()

    owned_by_rank = {participants[index]: owned[index] for index in range(power)}
    # Rank 0 is always a participant (index 0), so assembly at rank 0 is valid.
    final = assemble_at_root(owned_by_rank, images, comm, mode)
    return final, merges


def radix_k(
    images: list[RunImage],
    comm: SimulatedCommunicator,
    mode: str,
    radices: list[int] | None = None,
) -> tuple[RunImage, int]:
    """Radix-k compositing; ``radices`` defaults to a factorisation of the task count.

    The mixed-radix digit layout keeps every exchange group contiguous in the
    (visibility-ordered) rank numbering, so folding group pieces in digit
    order preserves OVER correctness.
    """
    size = comm.size
    if len(images) != size:
        raise ValueError("need exactly one sub-image per rank")
    num_pixels = images[0].num_pixels
    if radices is None:
        radices = factor_radices(size)
    product = int(np.prod(radices))
    if product != size:
        raise ValueError(f"radices {radices} do not multiply out to {size} ranks")
    merges = 0

    owned = {rank: (0, num_pixels) for rank in range(size)}
    digits = {rank: _mixed_radix_digits(rank, radices) for rank in range(size)}
    stride = 1
    for round_index, radix in enumerate(radices):
        pieces_of = {}
        for rank in range(size):
            start, stop = owned[rank]
            pieces = _pixel_partition(stop - start, radix)
            pieces_of[rank] = [(start + a, start + b) for a, b in pieces]
        # Exchange phase: every rank sends each group partner its piece.
        sends = []
        for rank in range(size):
            my_digit = digits[rank][round_index]
            rank_edges = np.array(
                [start for start, _ in pieces_of[rank]] + [pieces_of[rank][-1][1]], dtype=np.int64
            )
            messages = images[rank].piece_table(rank_edges, with_depth=_with_depth(mode))
            for member_digit in range(radix):
                if member_digit == my_digit:
                    continue
                partner = rank + (member_digit - my_digit) * stride
                payload, nbytes = messages[member_digit]
                sends.append((rank, partner, payload, nbytes))
        delivered = comm.exchange(sends)
        # Merge phase: every group's digit-ordered fold in one batched merge.
        groups = []
        for rank in range(size):
            my_digit = digits[rank][round_index]
            keep_start, keep_stop = pieces_of[rank][my_digit]
            own_pixels, own_rgba, own_depth = images[rank].fragments(keep_start, keep_stop)
            fragment_sets = [(my_digit, own_pixels, own_rgba, own_depth)]
            for source, payload in delivered.get(rank, []):
                pixels, rgba, depth, _ = payload_fragments(payload)
                fragment_sets.append((digits[source][round_index], pixels, rgba, depth))
            groups.append((rank, fragment_sets))
            owned[rank] = (keep_start, keep_stop)
        resolved, folded = merge_groups(groups, num_pixels, mode)
        merges += folded
        for rank, _ in groups:
            images[rank] = _replace_image(images[rank], resolved[rank])
        comm.next_round()
        stride *= radix

    final = assemble_at_root(owned, images, comm, mode)
    return final, merges
