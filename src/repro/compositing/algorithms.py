"""The three sort-last exchange algorithms over run-length sub-images.

* :func:`direct_send` -- every rank is assigned one contiguous run of pixels
  and receives that run from every other rank in a single exchange round
  (Neumann 1993).
* :func:`binary_swap` -- log2(P) rounds of pairwise half-image exchanges
  (Ma et al. 1994); non-power-of-two task counts are handled with an initial
  fold phase that pairs up the trailing ranks.
* :func:`radix_k` -- the generalisation of Peterka et al. used by IceT and by
  the paper's experiments: the task count is factored into radices and each
  round performs a k-way exchange within groups of k ranks.

This is the *fast* data path: per-rank images are
:class:`~repro.compositing.runimage.RunImage` (contiguous active-pixel runs
with an SoA payload), a round's traffic is posted as one batched array-valued
:meth:`~repro.runtime.communicator.SimulatedCommunicator.exchange`, and a
round's merges resolve in one :func:`~repro.compositing.merge.merge_groups`
call -- O(rounds) array operations instead of O(pixels · pieces) Python work.
The communication pattern (who sends which run to whom, and where the round
boundaries fall) is identical to the dense reference drivers in
:mod:`repro.compositing.reference`, which the differential tests hold this
module to within 1e-10.

Ordering note: the OVER operator is only associative when every pairwise
merge combines fragments that are adjacent and contiguous in visibility
order.  Callers hand the algorithms their sub-images already sorted by
visibility (ascending ``RunImage.key``), and every merge folds group pieces
in ascending key order, exactly as the reference's ``_ordered_fold`` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.compositing.merge import fold_bag_into_partial, merge_groups
from repro.compositing.runimage import RunImage, payload_fragments
from repro.runtime.communicator import SimulatedCommunicator

__all__ = [
    "direct_send",
    "binary_swap",
    "radix_k",
    "assemble_at_root",
    "factor_radices",
    "validate_radices",
    "RadixFactorError",
    "StreamStats",
    "direct_send_streaming",
    "binary_swap_streaming",
    "radix_k_streaming",
]


def _pixel_partition(num_pixels: int, parts: int) -> list[tuple[int, int]]:
    """Split ``[0, num_pixels)`` into ``parts`` near-equal contiguous runs."""
    edges = np.linspace(0, num_pixels, parts + 1).astype(np.int64)
    return [(int(edges[i]), int(edges[i + 1])) for i in range(parts)]


class RadixFactorError(ValueError):
    """A radix schedule that does not exactly tile the rank count.

    Every radix-k exchange round partitions each group's owned pixel run into
    ``radix`` pieces -- one per group member -- so the product of the radices
    must equal the task count exactly.  A schedule that multiplies out short
    (or long) would silently drop (or invent) group members at large P, which
    is why this is a structured error: the study CLI maps it to its own exit
    code and reports ``size``/``radices``/``product`` machine-readably.
    """

    def __init__(self, size: int, radices, reason: str | None = None) -> None:
        self.size = int(size)
        self.radices = tuple(int(r) for r in radices)
        self.product = int(np.prod(self.radices)) if self.radices else 0
        message = reason or (
            f"radix schedule {list(self.radices)} multiplies out to {self.product} "
            f"ranks but must cover exactly {self.size}; every round's k-way groups "
            "tile the rank count, so no radix may be truncated"
        )
        super().__init__(message)

    def as_dict(self) -> dict:
        """Machine-readable form (the study CLI prints this as JSON)."""
        return {
            "error": "radix-factorization",
            "size": self.size,
            "radices": list(self.radices),
            "product": self.product,
            "message": str(self),
        }


def validate_radices(size: int, radices) -> list[int]:
    """Check a radix schedule against a task count; returns it normalized to ints.

    Raises :class:`RadixFactorError` when the schedule is empty, contains a
    non-positive radix, or its product differs from ``size``.
    """
    schedule = [int(r) for r in radices]
    if not schedule:
        raise RadixFactorError(size, schedule, reason="radix schedule must not be empty")
    if any(r < 1 for r in schedule):
        raise RadixFactorError(
            size, schedule, reason=f"radix schedule {schedule} contains a non-positive radix"
        )
    if int(np.prod(schedule)) != int(size):
        raise RadixFactorError(size, schedule)
    return schedule


def factor_radices(size: int, target: int = 4) -> list[int]:
    """Factor a task count into radices no larger than ``target`` (prefer larger factors).

    The result always satisfies :func:`validate_radices` -- any remaining
    co-factor larger than ``target`` becomes a final (large) radix rather
    than being truncated.
    """
    if size < 1:
        raise ValueError("size must be positive")
    radices: list[int] = []
    remaining = size
    divisor = target
    while remaining > 1 and divisor >= 2:
        while remaining % divisor == 0:
            radices.append(divisor)
            remaining //= divisor
        divisor -= 1
    if remaining > 1:
        radices.append(remaining)
    return validate_radices(size, radices or [1])


def _mixed_radix_digits(rank: int, radices: list[int]) -> list[int]:
    """Digits of ``rank`` in the mixed-radix system defined by ``radices``."""
    digits = []
    for radix in radices:
        digits.append(rank % radix)
        rank //= radix
    return digits


def _replace_image(template: RunImage, merged: tuple[np.ndarray, np.ndarray, np.ndarray]) -> RunImage:
    """A new :class:`RunImage` holding ``merged`` fragments, keeping shape and key."""
    pixels, rgba, depth = merged
    return RunImage.from_arrays(pixels, rgba, depth, template.width, template.height, key=template.key)


def _with_depth(mode: str) -> bool:
    """Over-mode wire payloads drop the depth plane (the scalar key stands in)."""
    return mode == "depth"


def assemble_at_root(
    owned: dict[int, tuple[int, int]],
    images: list[RunImage],
    comm: SimulatedCommunicator,
    mode: str,
) -> RunImage:
    """Gather each rank's owned run at rank 0 and assemble the final run image.

    ``owned`` maps rank to its ``(start, stop)`` interval; the intervals tile
    ``[0, num_pixels)``, so concatenating the pieces (sorted by pixel) yields
    the complete composited image.
    """
    comm.next_round()
    sends = []
    for rank, (start, stop) in sorted(owned.items()):
        if rank == 0 or start >= stop:
            continue
        payload, nbytes = images[rank].piece_message(start, stop, with_depth=_with_depth(mode))
        sends.append((rank, 0, payload, nbytes))
    delivered = comm.exchange(sends)

    start, stop = owned.get(0, (0, 0))
    pieces = [images[0].fragments(start, stop)] if stop > start else []
    for _, payload in delivered.get(0, []):
        pixels, rgba, depth, _ = payload_fragments(payload)
        pieces.append((pixels, rgba, depth))
    pieces = [piece for piece in pieces if len(piece[0])]
    if not pieces:
        empty = np.empty(0, dtype=np.int64)
        return RunImage.from_arrays(empty, np.empty((0, 4)), np.empty(0), images[0].width, images[0].height)
    all_pixels = np.concatenate([piece[0] for piece in pieces])
    order = np.argsort(all_pixels, kind="stable")  # owned intervals are disjoint
    if mode == "depth":
        depth = np.concatenate([piece[2] for piece in pieces])[order]
    else:
        depth = np.zeros(len(all_pixels))  # over-mode depth lives in the keys
    return RunImage.from_arrays(
        all_pixels[order],
        np.concatenate([piece[1] for piece in pieces])[order],
        depth,
        images[0].width,
        images[0].height,
    )


def direct_send(
    images: list[RunImage], comm: SimulatedCommunicator, mode: str
) -> tuple[RunImage, int]:
    """Direct-send compositing; returns ``(final_image_at_root, merge_operations)``."""
    size = comm.size
    if len(images) != size:
        raise ValueError("need exactly one sub-image per rank")
    num_pixels = images[0].num_pixels
    partition = _pixel_partition(num_pixels, size)

    # One exchange round: every rank sends every other rank's run to its owner.
    edges = np.array([start for start, _ in partition] + [num_pixels], dtype=np.int64)
    sends = []
    for source in range(size):
        messages = images[source].piece_table(edges, with_depth=_with_depth(mode))
        for owner in range(size):
            if owner == source:
                continue
            start, stop = partition[owner]
            if start >= stop:
                continue
            payload, nbytes = messages[owner]
            sends.append((source, owner, payload, nbytes))
    delivered = comm.exchange(sends)

    # Every owner's fold resolves in one batched merge across all owners.
    groups = []
    for owner in range(size):
        start, stop = partition[owner]
        if start >= stop:
            continue
        own_pixels, own_rgba, own_depth = images[owner].fragments(start, stop)
        fragment_sets = [(owner, own_pixels, own_rgba, own_depth)]
        for source, payload in delivered.get(owner, []):
            pixels, rgba, depth, _ = payload_fragments(payload)
            fragment_sets.append((source, pixels, rgba, depth))
        groups.append((owner, fragment_sets))
    resolved, merges = merge_groups(groups, num_pixels, mode)
    for owner, _ in groups:
        images[owner] = _replace_image(images[owner], resolved[owner])

    owned = {rank: partition[rank] for rank in range(size)}
    final = assemble_at_root(owned, images, comm, mode)
    return final, merges


def binary_swap(
    images: list[RunImage], comm: SimulatedCommunicator, mode: str
) -> tuple[RunImage, int]:
    """Binary-swap compositing with a pairing fold for non-power-of-two task counts."""
    size = comm.size
    if len(images) != size:
        raise ValueError("need exactly one sub-image per rank")
    num_pixels = images[0].num_pixels
    merges = 0

    power = 1
    while power * 2 <= size:
        power *= 2
    extra = size - power

    # Fold phase: the trailing 2*extra ranks are merged pairwise so that the
    # remaining participants hold contiguous runs of the visibility order.
    participants = list(range(size - 2 * extra))
    if extra:
        pair_ranks = list(range(size - 2 * extra, size))
        pairs = list(zip(pair_ranks[0::2], pair_ranks[1::2]))
        sends = []
        for first, second in pairs:
            payload, nbytes = images[second].piece_message(0, num_pixels, with_depth=_with_depth(mode))
            sends.append((second, first, payload, nbytes))
        delivered = comm.exchange(sends)
        groups = []
        for first, second in pairs:
            own_pixels, own_rgba, own_depth = images[first].fragments(0, num_pixels)
            _, payload = delivered[first][0]
            pixels, rgba, depth, _ = payload_fragments(payload)
            groups.append((first, [(first, own_pixels, own_rgba, own_depth), (second, pixels, rgba, depth)]))
            participants.append(first)
        resolved, folded = merge_groups(groups, num_pixels, mode)
        merges += folded
        for first, _ in groups:
            images[first] = _replace_image(images[first], resolved[first])
        comm.next_round()
    assert len(participants) == power

    # Swap rounds over participant indices (participants are visibility-ordered).
    owned = {index: (0, num_pixels) for index in range(power)}
    rounds = int(np.log2(power)) if power > 1 else 0
    store = {index: images[participants[index]] for index in range(power)}
    for round_index in range(rounds):
        merges += _swap_round(
            store, owned, participants, range(power), 1 << round_index, comm, mode, num_pixels, None
        )
        comm.next_round()
    for index in range(power):
        images[participants[index]] = store[index]

    owned_by_rank = {participants[index]: owned[index] for index in range(power)}
    # Rank 0 is always a participant (index 0), so assembly at rank 0 is valid.
    final = assemble_at_root(owned_by_rank, images, comm, mode)
    return final, merges


def radix_k(
    images: list[RunImage],
    comm: SimulatedCommunicator,
    mode: str,
    radices: list[int] | None = None,
) -> tuple[RunImage, int]:
    """Radix-k compositing; ``radices`` defaults to a factorisation of the task count.

    The mixed-radix digit layout keeps every exchange group contiguous in the
    (visibility-ordered) rank numbering, so folding group pieces in digit
    order preserves OVER correctness.
    """
    size = comm.size
    if len(images) != size:
        raise ValueError("need exactly one sub-image per rank")
    num_pixels = images[0].num_pixels
    if radices is None:
        radices = factor_radices(size)
    radices = validate_radices(size, radices)
    merges = 0

    owned = {rank: (0, num_pixels) for rank in range(size)}
    digits = {rank: _mixed_radix_digits(rank, radices) for rank in range(size)}
    store = {rank: images[rank] for rank in range(size)}
    stride = 1
    for round_index, radix in enumerate(radices):
        merges += _radix_round(
            store, owned, digits, range(size), round_index, radix, stride, comm, mode, num_pixels, None
        )
        comm.next_round()
        stride *= radix
    for rank in range(size):
        images[rank] = store[rank]

    final = assemble_at_root(owned, images, comm, mode)
    return final, merges


# ---------------------------------------------------------------------------
# Shared round bodies (the in-memory drivers above and the cohort scheduler
# below execute the exact same exchange + merge per round through these).
# ---------------------------------------------------------------------------


def _swap_round(
    store: dict[int, RunImage],
    owned: dict[int, tuple[int, int]],
    participants: list[int],
    indices,
    bit: int,
    comm: SimulatedCommunicator,
    mode: str,
    num_pixels: int,
    round_index: int | None,
) -> int:
    """One binary-swap round over ``indices`` (participant-index addressed).

    ``store`` maps participant index to its current image (full image or
    retired piece -- the pixel-value slicing of ``piece_message`` works on
    both), ``owned`` the index's current interval.  ``round_index`` addresses
    the communicator log explicitly (cohort blocks revisit one logical round
    at different wall-clock times); ``None`` records into the current round,
    which is what the in-memory driver uses.  Returns the merge-op count.
    """
    with_depth = _with_depth(mode)
    sends = []
    for index in indices:
        partner = index ^ bit
        start, stop = owned[index]
        middle = (start + stop) // 2
        send_range = (middle, stop) if index < partner else (start, middle)
        payload, nbytes = store[index].piece_message(*send_range, with_depth=with_depth)
        sends.append((participants[index], participants[partner], payload, nbytes))
    delivered = comm.exchange(sends, round_index=round_index)
    groups = []
    for index in indices:
        partner = index ^ bit
        start, stop = owned[index]
        middle = (start + stop) // 2
        keep_range = (start, middle) if index < partner else (middle, stop)
        rank = participants[index]
        _, payload = delivered[rank][0]
        pixels, rgba, depth, _ = payload_fragments(payload)
        own_pixels, own_rgba, own_depth = store[index].fragments(*keep_range)
        groups.append(
            (index, [(index, own_pixels, own_rgba, own_depth), (partner, pixels, rgba, depth)])
        )
        owned[index] = keep_range
    resolved, folded = merge_groups(groups, num_pixels, mode)
    for index, _ in groups:
        store[index] = _replace_image(store[index], resolved[index])
    return folded


def _radix_round(
    store: dict[int, RunImage],
    owned: dict[int, tuple[int, int]],
    digits: dict[int, list[int]],
    member_ranks,
    round_index: int,
    radix: int,
    stride: int,
    comm: SimulatedCommunicator,
    mode: str,
    num_pixels: int,
    log_round: int | None,
) -> int:
    """One radix-k round over ``member_ranks`` (rank addressed).

    Group members at round ``round_index`` differ only in that round's digit,
    so they share an owned interval; each member keeps piece ``my_digit`` of
    its interval's ``radix``-way partition and receives the matching piece
    from every group partner.  ``log_round`` addresses the communicator log
    explicitly (``None`` = current round, the in-memory driver's behavior).
    Returns the merge-op count.
    """
    with_depth = _with_depth(mode)
    pieces_of = {}
    for rank in member_ranks:
        start, stop = owned[rank]
        pieces = _pixel_partition(stop - start, radix)
        pieces_of[rank] = [(start + a, start + b) for a, b in pieces]
    # Exchange phase: every rank sends each group partner its piece.
    sends = []
    for rank in member_ranks:
        my_digit = digits[rank][round_index]
        rank_edges = np.array(
            [start for start, _ in pieces_of[rank]] + [pieces_of[rank][-1][1]], dtype=np.int64
        )
        messages = store[rank].piece_table(rank_edges, with_depth=with_depth)
        for member_digit in range(radix):
            if member_digit == my_digit:
                continue
            partner = rank + (member_digit - my_digit) * stride
            payload, nbytes = messages[member_digit]
            sends.append((rank, partner, payload, nbytes))
    delivered = comm.exchange(sends, round_index=log_round)
    # Merge phase: every group's digit-ordered fold in one batched merge.
    groups = []
    for rank in member_ranks:
        my_digit = digits[rank][round_index]
        keep_start, keep_stop = pieces_of[rank][my_digit]
        own_pixels, own_rgba, own_depth = store[rank].fragments(keep_start, keep_stop)
        fragment_sets = [(my_digit, own_pixels, own_rgba, own_depth)]
        for source, payload in delivered.get(rank, []):
            pixels, rgba, depth, _ = payload_fragments(payload)
            fragment_sets.append((digits[source][round_index], pixels, rgba, depth))
        groups.append((rank, fragment_sets))
        owned[rank] = (keep_start, keep_stop)
    resolved, folded = merge_groups(groups, num_pixels, mode)
    for rank, _ in groups:
        store[rank] = _replace_image(store[rank], resolved[rank])
    return folded


# ---------------------------------------------------------------------------
# The cohort scheduler: streaming/hierarchical execution to thousands of ranks.
#
# The in-memory drivers above materialize every rank's RunImage for the whole
# exchange, which caps the simulated scale near 256 ranks.  The streaming
# drivers below execute the *same* rounds as a pure reordering: rank images
# are generated on demand (``factory(position)``), processed in bounded
# cohorts (generate -> merge -> retire), and only compacted owned-interval
# pieces survive a cohort.  Because every merge kernel invocation sees the
# same per-pixel operation chains in the same order -- OVER blends are
# elementwise and depth selection is an exact (depth, key) tournament -- the
# streamed result is bit-identical to the in-memory engine (and therefore to
# the dense reference oracle wherever that still fits), and independent of
# ``max_live_ranks``.  The memory contract: at most ``max_live_ranks`` full
# rank images are live at once, plus one transient (the running direct-send
# partial, or the second member of a non-power-of-two fold pair).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StreamStats:
    """Cohort-execution bookkeeping reported alongside a streamed composite.

    ``peak_live_images`` counts simultaneously-live *full rank images* (the
    memory contract bounds it by ``max_live_ranks + 1``); retired pieces and
    the bounded running partial are not full images.  ``cohorts`` counts
    generate->merge->retire batches, and ``total_active_pixels`` accumulates
    every generated image's active-pixel count (the Eq. 5.5 ``avg(AP)``
    numerator, summed so the caller can average without holding the images).
    """

    max_live_ranks: int
    peak_live_images: int
    cohorts: int
    total_active_pixels: int


class _LiveLedger:
    """Counts live full rank images; the scheduler's memory-contract witness."""

    def __init__(self) -> None:
        self.live = 0
        self.peak = 0

    def acquire(self, count: int = 1) -> None:
        self.live += count
        if self.live > self.peak:
            self.peak = self.live

    def release(self, count: int = 1) -> None:
        self.live -= count


def _materialize(
    factory: Callable[[int], RunImage],
    position: int,
    width: int,
    height: int,
    ledger: _LiveLedger,
) -> RunImage:
    """Generate one rank's image, pin its visibility key, and count it live."""
    image = factory(position)
    if not isinstance(image, RunImage):
        raise TypeError(
            f"streaming factory must return a RunImage, got {type(image).__name__} "
            f"for position {position}"
        )
    if image.width != width or image.height != height:
        raise ValueError(
            f"factory image for position {position} is {image.width}x{image.height}, "
            f"expected {width}x{height}"
        )
    if image.key != position:
        image = RunImage.from_arrays(
            image.pixels, image.rgba, image.depth, width, height, key=position
        )
    ledger.acquire()
    return image


def _retire_piece(image: RunImage, start: int, stop: int, width: int, height: int) -> RunImage:
    """Copy an owned-interval slice out of a full image so the image can be freed.

    ``fragments`` returns views; retiring a view would pin the whole rank
    image's payload in memory, defeating the cohort contract.
    """
    pixels, rgba, depth = image.fragments(start, stop)
    return RunImage.from_arrays(
        pixels.copy(), rgba.copy(), depth.copy(), width, height, key=image.key
    )


def _assemble_pieces(
    owned: dict[int, tuple[int, int]],
    pieces: dict[int, RunImage],
    comm: SimulatedCommunicator,
    mode: str,
    round_index: int,
    width: int,
    height: int,
) -> RunImage:
    """:func:`assemble_at_root` over retired pieces with explicit round addressing."""
    sends = []
    for rank, (start, stop) in sorted(owned.items()):
        if rank == 0 or start >= stop:
            continue
        payload, nbytes = pieces[rank].piece_message(start, stop, with_depth=_with_depth(mode))
        sends.append((rank, 0, payload, nbytes))
    delivered = comm.exchange(sends, round_index=round_index)

    start, stop = owned.get(0, (0, 0))
    fragments = [pieces[0].fragments(start, stop)] if stop > start else []
    for _, payload in delivered.get(0, []):
        pixels, rgba, depth, _ = payload_fragments(payload)
        fragments.append((pixels, rgba, depth))
    fragments = [piece for piece in fragments if len(piece[0])]
    if not fragments:
        empty = np.empty(0, dtype=np.int64)
        return RunImage.from_arrays(empty, np.empty((0, 4)), np.empty(0), width, height)
    all_pixels = np.concatenate([piece[0] for piece in fragments])
    order = np.argsort(all_pixels, kind="stable")  # owned intervals are disjoint
    if mode == "depth":
        depth = np.concatenate([piece[2] for piece in fragments])[order]
    else:
        depth = np.zeros(len(all_pixels))  # over-mode depth lives in the keys
    return RunImage.from_arrays(
        all_pixels[order],
        np.concatenate([piece[1] for piece in fragments])[order],
        depth,
        width,
        height,
    )


def direct_send_streaming(
    factory: Callable[[int], RunImage],
    size: int,
    width: int,
    height: int,
    comm: SimulatedCommunicator,
    mode: str,
    max_live_ranks: int = 256,
) -> tuple[RunImage, int, StreamStats]:
    """Cohort-streamed direct-send; returns ``(final, merge_ops, stats)``.

    Direct-send's single exchange round makes every owner fold the whole
    rank population over its pixel run; since the owner runs tile the image,
    the union of all folds is one global per-pixel left fold in rank order.
    The scheduler therefore keeps a single running partial over the full
    pixel range and folds each cohort's concatenated fragment bag onto it
    through :func:`~repro.compositing.merge.fold_bag_into_partial` -- the
    identical operation chain the in-memory owner-band merge performs, split
    at cohort boundaries.  Wire accounting is aggregated per link (a rank
    posts P-1 messages; enumerating P^2 tuples at 16k ranks is off the
    table) via ``SimulatedCommunicator.record_link_totals``.
    """
    if size < 1:
        raise ValueError("streaming composite requires at least one rank")
    num_pixels = width * height
    partition = _pixel_partition(num_pixels, size)
    edges = np.array([start for start, _ in partition] + [num_pixels], dtype=np.int64)
    interval_active = edges[1:] > edges[:-1]
    with_depth = _with_depth(mode)
    comm.ensure_rounds(2)

    ledger = _LiveLedger()
    partial = None
    merges = 0
    total_active = 0
    cohorts = 0
    sent_bytes = np.zeros(size)
    sent_msgs = np.zeros(size, dtype=np.int64)
    recv_bytes = np.zeros(size)
    recv_msgs = np.zeros(size, dtype=np.int64)

    chunk = max(1, int(max_live_ranks))
    for cohort_start in range(0, size, chunk):
        cohorts += 1
        ranks = range(cohort_start, min(cohort_start + chunk, size))
        images = []
        for rank in ranks:
            image = _materialize(factory, rank, width, height, ledger)
            total_active += image.active_pixels
            nbytes = image.piece_wire_table(edges, with_depth)
            mask = interval_active.copy()
            mask[rank] = False
            sent_bytes[rank] += float(nbytes[mask].sum())
            sent_msgs[rank] += int(np.count_nonzero(mask))
            np.add(recv_bytes, np.where(mask, nbytes, 0.0), out=recv_bytes)
            recv_msgs += mask
            images.append(image)
        bag_pixels = np.concatenate([image.pixels for image in images])
        bag_rgba = np.concatenate([image.rgba for image in images])
        bag_depth = (
            np.concatenate([image.depth for image in images]) if with_depth else None
        )
        bag_keys = (
            np.repeat(
                np.asarray(ranks, dtype=np.int64),
                np.array([image.active_pixels for image in images], dtype=np.int64),
            )
            if with_depth
            else None
        )
        first_fold = partial is None
        partial, folded = fold_bag_into_partial(partial, bag_pixels, bag_rgba, bag_depth, bag_keys, mode)
        merges += folded
        if first_fold:
            ledger.acquire()  # the running partial counts as one live image
        images = None
        ledger.release(len(ranks))
    comm.record_link_totals(0, sent_bytes, sent_msgs, recv_bytes, recv_msgs)

    pixels, rgba, depth, _ = partial
    final = RunImage.from_arrays(
        pixels, rgba, depth if with_depth else np.zeros(len(pixels)), width, height
    )
    # Assembly round: each owner ships its (merged) run to root; the merged
    # content of each owner interval is exactly the matching slice of the
    # global partial, so the wire sizes come off the final image's runs.
    final_bytes = final.piece_wire_table(edges, with_depth)
    mask = interval_active.copy()
    mask[0] = False
    assembly_sent = np.where(mask, final_bytes, 0.0)
    assembly_sent_msgs = mask.astype(np.int64)
    assembly_recv = np.zeros(size)
    assembly_recv_msgs = np.zeros(size, dtype=np.int64)
    assembly_recv[0] = float(final_bytes[mask].sum())
    assembly_recv_msgs[0] = int(np.count_nonzero(mask))
    comm.record_link_totals(1, assembly_sent, assembly_sent_msgs, assembly_recv, assembly_recv_msgs)

    stats = StreamStats(int(max_live_ranks), ledger.peak, cohorts, total_active)
    return final, merges, stats


def binary_swap_streaming(
    factory: Callable[[int], RunImage],
    size: int,
    width: int,
    height: int,
    comm: SimulatedCommunicator,
    mode: str,
    max_live_ranks: int = 256,
) -> tuple[RunImage, int, StreamStats]:
    """Cohort-streamed binary-swap; returns ``(final, merge_ops, stats)``.

    Swap round ``r`` pairs participant indices differing in bit ``r``, so
    rounds ``0..log2(B)-1`` stay inside aligned blocks of ``B`` participants
    (``B`` = largest power of two within ``max_live_ranks``).  Phase 1 runs
    those rounds block by block -- generate the block's members (folding
    non-power-of-two pairs on the fly), swap locally, retire each member to
    its owned-interval piece.  Phase 2 runs the remaining cross-block rounds
    over the retired pieces, whose total size is bounded by the per-block
    pixel coverage, not the rank count.  Round traffic is recorded into the
    same logical round log the in-memory driver produces.
    """
    if size < 1:
        raise ValueError("streaming composite requires at least one rank")
    num_pixels = width * height
    with_depth = _with_depth(mode)
    power = 1
    while power * 2 <= size:
        power *= 2
    extra = size - power
    fold_round = 1 if extra else 0
    swap_rounds = int(np.log2(power)) if power > 1 else 0
    total_rounds = fold_round + swap_rounds + 2  # trailing empty round + assembly
    assembly_round = total_rounds - 1
    comm.ensure_rounds(total_rounds)

    # Participant recipes, in the in-memory driver's participant order: plain
    # leading ranks first, then the first member of each trailing fold pair.
    recipes: list[tuple] = [("plain", rank) for rank in range(size - 2 * extra)]
    pair_ranks = list(range(size - 2 * extra, size))
    recipes += [("pair", first, second) for first, second in zip(pair_ranks[0::2], pair_ranks[1::2])]
    participants = [recipe[1] for recipe in recipes]

    block = 1
    while block * 2 <= min(int(max_live_ranks), power):
        block *= 2
    local_rounds = int(np.log2(block))

    ledger = _LiveLedger()
    merges = 0
    total_active = 0
    cohorts = 0
    pieces: dict[int, RunImage] = {}
    owned: dict[int, tuple[int, int]] = {}

    for block_start in range(0, power, block):
        cohorts += 1
        members = range(block_start, block_start + block)
        store: dict[int, RunImage] = {}
        for index in members:
            recipe = recipes[index]
            if recipe[0] == "plain":
                image = _materialize(factory, recipe[1], width, height, ledger)
                total_active += image.active_pixels
            else:
                _, first, second = recipe
                image = _materialize(factory, first, width, height, ledger)
                partner_image = _materialize(factory, second, width, height, ledger)
                total_active += image.active_pixels + partner_image.active_pixels
                payload, nbytes = partner_image.piece_message(0, num_pixels, with_depth=with_depth)
                comm.exchange([(second, first, payload, nbytes)], round_index=0)
                own_pixels, own_rgba, own_depth = image.fragments(0, num_pixels)
                pixels, rgba, depth, _ = payload_fragments(payload)
                resolved, folded = merge_groups(
                    [
                        (
                            first,
                            [
                                (first, own_pixels, own_rgba, own_depth),
                                (second, pixels, rgba, depth),
                            ],
                        )
                    ],
                    num_pixels,
                    mode,
                )
                merges += folded
                image = _replace_image(image, resolved[first])
                ledger.release()  # the folded pair partner retires immediately
            store[index] = image
        block_owned = {index: (0, num_pixels) for index in members}
        for local_round in range(local_rounds):
            merges += _swap_round(
                store,
                block_owned,
                participants,
                members,
                1 << local_round,
                comm,
                mode,
                num_pixels,
                fold_round + local_round,
            )
        for index in members:
            start, stop = block_owned[index]
            pieces[index] = _retire_piece(store[index], start, stop, width, height)
            owned[index] = (start, stop)
            ledger.release()
        store = None

    for swap_round in range(local_rounds, swap_rounds):
        merges += _swap_round(
            pieces,
            owned,
            participants,
            range(power),
            1 << swap_round,
            comm,
            mode,
            num_pixels,
            fold_round + swap_round,
        )

    owned_by_rank = {participants[index]: owned[index] for index in range(power)}
    pieces_by_rank = {participants[index]: pieces[index] for index in range(power)}
    final = _assemble_pieces(owned_by_rank, pieces_by_rank, comm, mode, assembly_round, width, height)
    stats = StreamStats(int(max_live_ranks), ledger.peak, cohorts, total_active)
    return final, merges, stats


def radix_k_streaming(
    factory: Callable[[int], RunImage],
    size: int,
    width: int,
    height: int,
    comm: SimulatedCommunicator,
    mode: str,
    max_live_ranks: int = 256,
    radices: list[int] | None = None,
) -> tuple[RunImage, int, StreamStats]:
    """Cohort-streamed radix-k; returns ``(final, merge_ops, stats)``.

    Rounds ``0..m-1`` with ``prod(radices[:m]) <= max_live_ranks`` are local
    to blocks of ``prod(radices[:m])`` consecutive ranks (group members at
    round ``r`` share all digits except digit ``r``), so phase 1 streams
    those blocks exactly like binary-swap's.  When even the first radix
    exceeds the live budget (prime task counts factor to ``[P]``), round 0's
    single k-way group *is* a global rank-order fold over its owned run, and
    the scheduler streams it with the same running-partial bag fold as
    direct-send before slicing the partial into the per-digit pieces.  Later
    rounds always run over retired pieces.
    """
    if size < 1:
        raise ValueError("streaming composite requires at least one rank")
    num_pixels = width * height
    with_depth = _with_depth(mode)
    if radices is None:
        radices = factor_radices(size)
    radices = validate_radices(size, radices)
    rounds = len(radices)
    total_rounds = rounds + 2  # trailing empty round + assembly
    assembly_round = rounds + 1
    comm.ensure_rounds(total_rounds)
    digits = {rank: _mixed_radix_digits(rank, radices) for rank in range(size)}

    ledger = _LiveLedger()
    merges = 0
    total_active = 0
    cohorts = 0
    pieces: dict[int, RunImage] = {}
    owned: dict[int, tuple[int, int]] = {}

    prefix_rounds = 0
    prefix = 1
    while prefix_rounds < rounds and prefix * radices[prefix_rounds] <= int(max_live_ranks):
        prefix *= radices[prefix_rounds]
        prefix_rounds += 1

    if prefix_rounds == 0:
        # Round 0's radix alone exceeds the live budget: stream each group's
        # k-way fold through a running partial, in chunks of max_live_ranks.
        radix = radices[0]
        partition = _pixel_partition(num_pixels, radix)
        edges = np.array([start for start, _ in partition] + [num_pixels], dtype=np.int64)
        sent_bytes = np.zeros(size)
        sent_msgs = np.zeros(size, dtype=np.int64)
        recv_bytes = np.zeros(size)
        recv_msgs = np.zeros(size, dtype=np.int64)
        chunk = max(1, int(max_live_ranks))
        for group_start in range(0, size, radix):
            partial = None
            for chunk_start in range(group_start, group_start + radix, chunk):
                cohorts += 1
                ranks = range(chunk_start, min(chunk_start + chunk, group_start + radix))
                images = []
                for rank in ranks:
                    image = _materialize(factory, rank, width, height, ledger)
                    total_active += image.active_pixels
                    nbytes = image.piece_wire_table(edges, with_depth)
                    my_digit = rank - group_start
                    mask = np.ones(radix, dtype=bool)
                    mask[my_digit] = False
                    sent_bytes[rank] += float(nbytes[mask].sum())
                    sent_msgs[rank] += radix - 1
                    np.add(
                        recv_bytes[group_start : group_start + radix],
                        np.where(mask, nbytes, 0.0),
                        out=recv_bytes[group_start : group_start + radix],
                    )
                    recv_msgs[group_start : group_start + radix] += mask
                    images.append(image)
                bag_pixels = np.concatenate([image.pixels for image in images])
                bag_rgba = np.concatenate([image.rgba for image in images])
                bag_depth = (
                    np.concatenate([image.depth for image in images]) if with_depth else None
                )
                bag_keys = (
                    np.repeat(
                        np.asarray(ranks, dtype=np.int64) - group_start,
                        np.array([image.active_pixels for image in images], dtype=np.int64),
                    )
                    if with_depth
                    else None
                )
                first_fold = partial is None
                partial, folded = fold_bag_into_partial(
                    partial, bag_pixels, bag_rgba, bag_depth, bag_keys, mode
                )
                merges += folded
                if first_fold:
                    ledger.acquire()
                images = None
                ledger.release(len(ranks))
            pixels, rgba, depth, _ = partial
            bounds = np.searchsorted(pixels, edges)
            for digit in range(radix):
                lo, hi = int(bounds[digit]), int(bounds[digit + 1])
                rank = group_start + digit
                pieces[rank] = RunImage.from_arrays(
                    pixels[lo:hi].copy(),
                    rgba[lo:hi].copy(),
                    depth[lo:hi].copy() if with_depth else np.zeros(hi - lo),
                    width,
                    height,
                    key=rank,
                )
                owned[rank] = partition[digit]
            partial = None
            ledger.release()  # the group partial is sliced into pieces and dropped
        comm.record_link_totals(0, sent_bytes, sent_msgs, recv_bytes, recv_msgs)
    else:
        for block_start in range(0, size, prefix):
            cohorts += 1
            members = range(block_start, block_start + prefix)
            store: dict[int, RunImage] = {}
            for rank in members:
                store[rank] = _materialize(factory, rank, width, height, ledger)
                total_active += store[rank].active_pixels
            block_owned = {rank: (0, num_pixels) for rank in members}
            stride = 1
            for local_round in range(prefix_rounds):
                merges += _radix_round(
                    store,
                    block_owned,
                    digits,
                    members,
                    local_round,
                    radices[local_round],
                    stride,
                    comm,
                    mode,
                    num_pixels,
                    local_round,
                )
                stride *= radices[local_round]
            for rank in members:
                start, stop = block_owned[rank]
                pieces[rank] = _retire_piece(store[rank], start, stop, width, height)
                owned[rank] = (start, stop)
                ledger.release()
            store = None

    stride = int(np.prod(radices[:max(prefix_rounds, 1)]))
    for round_index in range(max(prefix_rounds, 1), rounds):
        merges += _radix_round(
            pieces,
            owned,
            digits,
            range(size),
            round_index,
            radices[round_index],
            stride,
            comm,
            mode,
            num_pixels,
            round_index,
        )
        stride *= radices[round_index]

    final = _assemble_pieces(owned, pieces, comm, mode, assembly_round, width, height)
    stats = StreamStats(int(max_live_ranks), ledger.peak, cohorts, total_active)
    return final, merges, stats
