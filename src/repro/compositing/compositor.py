"""Compositor front-end: the reproduction's IceT.

:class:`Compositor` takes the per-rank framebuffers produced by the local
renders, runs one of the exchange algorithms over a simulated communicator,
and reports both the measured local blending time and the modeled network
time.  The sum of the two is the ``T_COMP`` quantity of the multi-node
performance model (Section 5.6).

Two interchangeable engines execute the exchange:

* ``"runlength"`` (default) -- the fast data path: per-rank images are
  compacted to :class:`~repro.compositing.runimage.RunImage` run-length
  sub-images, rounds exchange array-valued payloads in one batched
  :meth:`~repro.runtime.communicator.SimulatedCommunicator.exchange`, and
  merges resolve through the batched dpp kernels of
  :mod:`repro.compositing.merge`.
* ``"reference"`` -- the original dense per-run Python drivers
  (:mod:`repro.compositing.reference`), kept as the differential-testing
  oracle; the fast engine must match it within 1e-10 on every algorithm,
  mode, and rank count.

Both engines assume the sort-last invariant that every rank renders over the
same background color, which is what the final image shows wherever no rank
contributed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import Callable

from repro.compositing.algorithms import (
    binary_swap,
    binary_swap_streaming,
    direct_send,
    direct_send_streaming,
    radix_k,
    radix_k_streaming,
    validate_radices,
)
from repro.compositing.image import from_framebuffer
from repro.compositing.reference import composite_reference
from repro.compositing.runimage import RunImage, active_mask, run_image_from_framebuffer
from repro.dpp.primitives import scatter
from repro.rendering.framebuffer import Framebuffer
from repro.runtime.communicator import NetworkModel, SimulatedCommunicator
from repro.util.timing import Timer

__all__ = ["CompositeResult", "Compositor"]

_ALGORITHMS = {
    "direct-send": direct_send,
    "binary-swap": binary_swap,
    "radix-k": radix_k,
}

_STREAMING = {
    "direct-send": direct_send_streaming,
    "binary-swap": binary_swap_streaming,
    "radix-k": radix_k_streaming,
}

_ENGINES = ("runlength", "reference", "cohort")


@dataclass
class CompositeResult:
    """Outcome of one parallel composite.

    Attributes
    ----------
    framebuffer:
        The final image (assembled at rank 0).
    local_seconds:
        Measured wall-clock time spent blending pixels.
    network_seconds:
        Network-model estimate of the exchange time (critical path over
        rounds).
    bytes_exchanged, messages:
        Total simulated traffic.  The run-length engine exchanges compressed
        (active-pixel) payloads, so its byte counts are lower than the
        reference engine's dense slabs for the same images.
    merge_operations:
        Equivalent pairwise pixel merges performed.  The run-length engine
        counts per-pixel fragment folds (fragments minus survivors); the
        reference engine counts dense run merges -- both measure blending
        work, at their own granularity.
    average_active_pixels:
        Mean number of active pixels per input sub-image -- the ``avg(AP)``
        input of the compositing performance model (Eq. 5.5).  Activity is
        mode-aware (finite depth for ``"depth"``, positive alpha for
        ``"over"``), matching the run-length representation.
    """

    framebuffer: Framebuffer
    local_seconds: float
    network_seconds: float
    bytes_exchanged: float
    messages: int
    merge_operations: int
    average_active_pixels: float
    num_tasks: int
    num_pixels: int
    engine: str = "runlength"
    #: Cohort-engine bookkeeping (zero on the dense engines): the configured
    #: live-image budget, the observed peak (contract: at most budget + 1),
    #: generate->merge->retire batches, and a compact per-round traffic
    #: summary (the round-log artifact the CI scale gate uploads).
    max_live_ranks: int = 0
    peak_live_images: int = 0
    cohorts: int = 0
    round_summary: list[dict] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Modeled total compositing time (local blending + network)."""
        return self.local_seconds + self.network_seconds


@dataclass
class Compositor:
    """Sort-last compositor over a set of per-rank framebuffers.

    Parameters
    ----------
    algorithm:
        ``"radix-k"`` (default, as used in the study), ``"binary-swap"``, or
        ``"direct-send"``.
    network:
        Network cost model for the simulated interconnect.
    radices:
        Explicit radix schedule for ``"radix-k"``; its product must equal the
        task count at composite time (:class:`~repro.compositing.algorithms.
        RadixFactorError` otherwise).  ``None`` factors the task count
        automatically.
    """

    algorithm: str = "radix-k"
    network: NetworkModel = field(default_factory=NetworkModel)
    radices: list[int] | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in _ALGORITHMS:
            raise ValueError(
                f"unknown compositing algorithm {self.algorithm!r}; choose from {sorted(_ALGORITHMS)}"
            )
        if self.radices is not None and self.algorithm != "radix-k":
            raise ValueError("an explicit radix schedule requires algorithm='radix-k'")

    def composite(
        self,
        framebuffers: list[Framebuffer],
        mode: str = "depth",
        visibility_order: list[float] | None = None,
        background: tuple[float, float, float, float] = (1.0, 1.0, 1.0, 0.0),
        engine: str = "runlength",
    ) -> CompositeResult:
        """Composite one framebuffer per rank into the final image.

        Parameters
        ----------
        framebuffers:
            One full-resolution framebuffer per simulated rank.
        mode:
            ``"depth"`` for surface images, ``"over"`` for volume images.
        visibility_order:
            Required for ``"over"``: smaller values composite in front
            (typically each block's distance from the camera).
        engine:
            ``"runlength"`` (fast path, default), ``"reference"`` (dense
            oracle), or ``"cohort"`` (the streaming scheduler running over
            the same framebuffers -- primarily for differential testing; at
            scale use :meth:`composite_streaming` so rank images need never
            coexist).
        """
        if not framebuffers:
            raise ValueError("composite requires at least one framebuffer")
        if engine not in _ENGINES:
            raise ValueError(f"unknown compositing engine {engine!r}; choose from {_ENGINES}")
        if mode == "over":
            if visibility_order is None:
                raise ValueError("'over' compositing requires a visibility order")
            if len(visibility_order) != len(framebuffers):
                raise ValueError("one visibility order entry per framebuffer is required")
            # Sort sub-images front to back so that ascending rank index equals
            # ascending visibility order -- the precondition the exchange
            # algorithms need for exact OVER compositing (IceT does the same
            # by pre-ordering its image layers).
            ranking = np.argsort(np.asarray(visibility_order), kind="stable")
            ordered = [framebuffers[index] for index in ranking]
        elif mode == "depth":
            ordered = list(framebuffers)
        else:
            raise ValueError(f"unknown compositing mode {mode!r}")

        if self.radices is not None:
            validate_radices(len(ordered), self.radices)
        comm = SimulatedCommunicator(len(ordered), self.network)
        algorithm = _ALGORITHMS[self.algorithm]
        if engine == "cohort":
            images = [
                run_image_from_framebuffer(framebuffer, mode, key=position)
                for position, framebuffer in enumerate(ordered)
            ]
            return self.composite_streaming(
                lambda position: images[position],
                len(ordered),
                ordered[0].width,
                ordered[0].height,
                mode,
                background=background,
                rank_background=tuple(float(v) for v in ordered[0].background),
            )
        if engine == "runlength":
            images = [
                run_image_from_framebuffer(framebuffer, mode, key=position)
                for position, framebuffer in enumerate(ordered)
            ]
            average_active = float(np.mean([image.active_pixels for image in images]))
            with Timer() as timer:
                if self.algorithm == "radix-k":
                    final, merges = algorithm(images, comm, mode, radices=self.radices)
                else:
                    final, merges = algorithm(images, comm, mode)
            framebuffer = self._assemble(final, mode, len(ordered), ordered[0].background, background)
        else:
            if mode == "over":
                sub_images = [
                    from_framebuffer(framebuffer, position)
                    for position, framebuffer in enumerate(ordered)
                ]
            else:
                sub_images = [from_framebuffer(framebuffer) for framebuffer in ordered]
            average_active = float(
                np.mean(
                    [int(np.count_nonzero(active_mask(fb.rgba, fb.depth, mode))) for fb in ordered]
                )
            )
            with Timer() as timer:
                dense, merges = composite_reference(
                    self.algorithm, [image.copy() for image in sub_images], comm, mode,
                    radices=self.radices,
                )
            framebuffer = dense.to_framebuffer(background)
        return CompositeResult(
            framebuffer=framebuffer,
            local_seconds=timer.elapsed,
            network_seconds=comm.estimate_time(),
            bytes_exchanged=comm.total_bytes(),
            messages=comm.total_messages(),
            merge_operations=merges,
            average_active_pixels=average_active,
            num_tasks=len(ordered),
            num_pixels=ordered[0].num_pixels,
            engine=engine,
        )

    def composite_streaming(
        self,
        factory: Callable[[int], RunImage],
        num_tasks: int,
        width: int,
        height: int,
        mode: str = "depth",
        *,
        max_live_ranks: int = 256,
        background: tuple[float, float, float, float] = (1.0, 1.0, 1.0, 0.0),
        rank_background: tuple[float, float, float, float] | None = None,
    ) -> CompositeResult:
        """Composite thousands of simulated ranks without materializing them.

        ``factory(position)`` produces the :class:`RunImage` for visibility
        position ``position`` (ascending = front to back; for depth
        compositing any order works) and is called exactly once per rank, in
        bounded cohorts -- at most ``max_live_ranks`` rank images are live at
        any point, so 16k simulated ranks fit where the dense engines cap out
        near 256.  The result is bit-identical to running :meth:`composite`
        over the same images (the scheduler is a pure reordering of the same
        merge operations) and invariant to ``max_live_ranks``.

        ``rank_background`` is the background the simulated renders used
        (what uncovered pixels show); defaults to ``background``.
        """
        if mode not in ("depth", "over"):
            raise ValueError(f"unknown compositing mode {mode!r}")
        if num_tasks < 1:
            raise ValueError("composite requires at least one task")
        if max_live_ranks < 1:
            raise ValueError("max_live_ranks must be positive")
        if self.radices is not None:
            validate_radices(num_tasks, self.radices)
        comm = SimulatedCommunicator(num_tasks, self.network)
        driver = _STREAMING[self.algorithm]
        kwargs = {"radices": self.radices} if self.algorithm == "radix-k" else {}
        with Timer() as timer:
            final, merges, stats = driver(
                factory, num_tasks, width, height, comm, mode,
                max_live_ranks=max_live_ranks, **kwargs,
            )
        fill = tuple(float(v) for v in (rank_background if rank_background is not None else background))
        framebuffer = self._assemble(final, mode, num_tasks, np.asarray(fill), background)
        return CompositeResult(
            framebuffer=framebuffer,
            local_seconds=timer.elapsed,
            network_seconds=comm.estimate_time(),
            bytes_exchanged=comm.total_bytes(),
            messages=comm.total_messages(),
            merge_operations=merges,
            average_active_pixels=stats.total_active_pixels / num_tasks,
            num_tasks=num_tasks,
            num_pixels=width * height,
            engine="cohort",
            max_live_ranks=stats.max_live_ranks,
            peak_live_images=stats.peak_live_images,
            cohorts=stats.cohorts,
            round_summary=comm.round_summaries(),
        )

    @staticmethod
    def _assemble(
        final: RunImage,
        mode: str,
        num_tasks: int,
        rank_background: np.ndarray,
        background: tuple[float, float, float, float],
    ) -> Framebuffer:
        """Scatter the composited runs into a dense framebuffer.

        Fill values reproduce the dense reference exactly: ``"depth"`` keeps
        the (shared) rank background with infinite depth wherever no rank
        contributed; ``"over"`` blends uncovered pixels of two or more ranks
        down to transparent black, and its depth plane is the front-most
        visibility position (0) everywhere.
        """
        framebuffer = Framebuffer(final.width, final.height, tuple(float(v) for v in background))
        rgba = np.empty((final.num_pixels, 4), dtype=np.float64)
        if mode == "depth":
            rgba[:] = np.asarray(rank_background, dtype=np.float64)
            depth = np.full(final.num_pixels, np.inf)
            if final.active_pixels:
                scatter(final.rgba, final.pixels, rgba)
                scatter(final.depth, final.pixels, depth)
        else:
            rgba[:] = np.asarray(rank_background, dtype=np.float64) if num_tasks == 1 else 0.0
            depth = np.zeros(final.num_pixels)
            if final.active_pixels:
                scatter(final.rgba, final.pixels, rgba)
        framebuffer.rgba = rgba.reshape(final.height, final.width, 4)
        framebuffer.depth = depth.reshape(final.height, final.width)
        return framebuffer

    @staticmethod
    def serial_reference(
        framebuffers: list[Framebuffer],
        mode: str = "depth",
        visibility_order: list[float] | None = None,
    ) -> Framebuffer:
        """Straightforward serial composite used as the correctness oracle."""
        if mode == "over":
            assert visibility_order is not None
            order = np.argsort(np.asarray(visibility_order), kind="stable")
            result = framebuffers[order[0]].copy()
            for index in order[1:]:
                result = _over(result, framebuffers[index])
            return result
        result = framebuffers[0].copy()
        for framebuffer in framebuffers[1:]:
            result = result.depth_composite(framebuffer)
        return result


def _over(front: Framebuffer, back: Framebuffer) -> Framebuffer:
    """Front-to-back OVER of two full framebuffers with straight alpha."""
    result = Framebuffer(front.width, front.height, tuple(front.background))
    alpha_front = front.rgba[..., 3:4]
    alpha_back = back.rgba[..., 3:4]
    rgb = front.rgba[..., :3] * alpha_front + back.rgba[..., :3] * alpha_back * (1.0 - alpha_front)
    alpha = alpha_front + alpha_back * (1.0 - alpha_front)
    safe = np.where(alpha > 0.0, alpha, 1.0)
    result.rgba[..., :3] = rgb / safe
    result.rgba[..., 3:4] = alpha
    result.depth = np.minimum(front.depth, back.depth)
    return result
