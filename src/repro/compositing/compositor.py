"""Compositor front-end: the reproduction's IceT.

:class:`Compositor` takes the per-rank framebuffers produced by the local
renders, runs one of the exchange algorithms over a simulated communicator,
and reports both the measured local blending time and the modeled network
time.  The sum of the two is the ``T_COMP`` quantity of the multi-node
performance model (Section 5.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compositing.algorithms import binary_swap, direct_send, radix_k
from repro.compositing.image import SubImage, from_framebuffer
from repro.rendering.framebuffer import Framebuffer
from repro.runtime.communicator import NetworkModel, SimulatedCommunicator
from repro.util.timing import Timer

__all__ = ["CompositeResult", "Compositor"]

_ALGORITHMS = {
    "direct-send": direct_send,
    "binary-swap": binary_swap,
    "radix-k": radix_k,
}


@dataclass
class CompositeResult:
    """Outcome of one parallel composite.

    Attributes
    ----------
    framebuffer:
        The final image (assembled at rank 0).
    local_seconds:
        Measured wall-clock time spent blending pixels.
    network_seconds:
        Network-model estimate of the exchange time (critical path over
        rounds).
    bytes_exchanged, messages:
        Total simulated traffic.
    merge_operations:
        Number of pairwise pixel-run merges performed.
    average_active_pixels:
        Mean number of active pixels per input sub-image -- the ``avg(AP)``
        input of the compositing performance model (Eq. 5.5).
    """

    framebuffer: Framebuffer
    local_seconds: float
    network_seconds: float
    bytes_exchanged: float
    messages: int
    merge_operations: int
    average_active_pixels: float
    num_tasks: int
    num_pixels: int

    @property
    def total_seconds(self) -> float:
        """Modeled total compositing time (local blending + network)."""
        return self.local_seconds + self.network_seconds


@dataclass
class Compositor:
    """Sort-last compositor over a set of per-rank framebuffers.

    Parameters
    ----------
    algorithm:
        ``"radix-k"`` (default, as used in the study), ``"binary-swap"``, or
        ``"direct-send"``.
    network:
        Network cost model for the simulated interconnect.
    """

    algorithm: str = "radix-k"
    network: NetworkModel = field(default_factory=NetworkModel)

    def __post_init__(self) -> None:
        if self.algorithm not in _ALGORITHMS:
            raise ValueError(
                f"unknown compositing algorithm {self.algorithm!r}; choose from {sorted(_ALGORITHMS)}"
            )

    def composite(
        self,
        framebuffers: list[Framebuffer],
        mode: str = "depth",
        visibility_order: list[float] | None = None,
        background: tuple[float, float, float, float] = (1.0, 1.0, 1.0, 0.0),
    ) -> CompositeResult:
        """Composite one framebuffer per rank into the final image.

        Parameters
        ----------
        framebuffers:
            One full-resolution framebuffer per simulated rank.
        mode:
            ``"depth"`` for surface images, ``"over"`` for volume images.
        visibility_order:
            Required for ``"over"``: smaller values composite in front
            (typically each block's distance from the camera).
        """
        if not framebuffers:
            raise ValueError("composite requires at least one framebuffer")
        if mode == "over":
            if visibility_order is None:
                raise ValueError("'over' compositing requires a visibility order")
            if len(visibility_order) != len(framebuffers):
                raise ValueError("one visibility order entry per framebuffer is required")
            # Sort sub-images front to back so that ascending rank index equals
            # ascending visibility order -- the precondition the exchange
            # algorithms need for exact OVER compositing (IceT does the same
            # by pre-ordering its image layers).
            ranking = np.argsort(np.asarray(visibility_order), kind="stable")
            sub_images = [
                from_framebuffer(framebuffers[index], position)
                for position, index in enumerate(ranking)
            ]
        elif mode == "depth":
            sub_images = [from_framebuffer(framebuffer) for framebuffer in framebuffers]
        else:
            raise ValueError(f"unknown compositing mode {mode!r}")

        average_active = float(np.mean([image.active_pixels() for image in sub_images]))
        comm = SimulatedCommunicator(len(sub_images), self.network)
        algorithm = _ALGORITHMS[self.algorithm]
        with Timer() as timer:
            final, merges = algorithm([image.copy() for image in sub_images], comm, mode)
        framebuffer = final.to_framebuffer(background)
        return CompositeResult(
            framebuffer=framebuffer,
            local_seconds=timer.elapsed,
            network_seconds=comm.estimate_time(),
            bytes_exchanged=comm.total_bytes(),
            messages=comm.total_messages(),
            merge_operations=merges,
            average_active_pixels=average_active,
            num_tasks=len(sub_images),
            num_pixels=sub_images[0].num_pixels,
        )

    @staticmethod
    def serial_reference(
        framebuffers: list[Framebuffer],
        mode: str = "depth",
        visibility_order: list[float] | None = None,
    ) -> Framebuffer:
        """Straightforward serial composite used as the correctness oracle."""
        if mode == "over":
            assert visibility_order is not None
            order = np.argsort(np.asarray(visibility_order), kind="stable")
            result = framebuffers[order[0]].copy()
            for index in order[1:]:
                result = _over(result, framebuffers[index])
            return result
        result = framebuffers[0].copy()
        for framebuffer in framebuffers[1:]:
            result = result.depth_composite(framebuffer)
        return result


def _over(front: Framebuffer, back: Framebuffer) -> Framebuffer:
    """Front-to-back OVER of two full framebuffers with straight alpha."""
    result = Framebuffer(front.width, front.height, tuple(front.background))
    alpha_front = front.rgba[..., 3:4]
    alpha_back = back.rgba[..., 3:4]
    rgb = front.rgba[..., :3] * alpha_front + back.rgba[..., :3] * alpha_back * (1.0 - alpha_front)
    alpha = alpha_front + alpha_back * (1.0 - alpha_front)
    safe = np.where(alpha > 0.0, alpha, 1.0)
    result.rgba[..., :3] = rgb / safe
    result.rgba[..., 3:4] = alpha
    result.depth = np.minimum(front.depth, back.depth)
    return result
