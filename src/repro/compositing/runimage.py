"""Run-length sub-images: the compacted SoA representation of the fast compositing path.

A sort-last rank's contribution to the final image is usually sparse -- the
paper's framing camera fills about 55% of the pixels on one task and the
footprint shrinks with the cube root of the task count -- yet the dense
:class:`~repro.compositing.image.SubImage` carries (and exchanges) every
pixel.  :class:`RunImage` stores only the *active* pixels, structure-of-arrays:

* ``pixels`` -- strictly ascending flat pixel ids of the active pixels;
* ``rgba`` / ``depth`` -- the SoA payload, in pixel order;
* ``key`` -- the image's integer visibility-order key (its rank position in
  the front-to-back ordering for ``"over"`` compositing, the source rank
  index for ``"depth"``);
* ``run_offsets`` / ``run_lengths`` -- the contiguous-run view of ``pixels``
  (per-run start pixel and length), derived lazily.  Runs are the *wire*
  representation: simulated exchanges charge the network for IceT-style
  run-length-encoded pieces (16-byte run header + SoA payload; see
  :meth:`RunImage.wire_bytes`), which is what makes the exchanged byte
  counts shrink with the active-pixel footprint.

Activity is mode-dependent, following the depth convention enforced by
:class:`repro.rendering.result.RenderResult` (covered pixel ⇔ alpha > 0 ⇔
finite depth):

* ``"depth"`` (z-buffer) compositing: a pixel contributes iff its depth is
  finite;
* ``"over"`` (alpha) compositing: a pixel contributes iff its alpha is
  positive (per-pixel depth is replaced by the constant visibility key).

Construction from a framebuffer is the stream-compaction idiom: the hot
default (``compact="inline"``) reverse-indexes the active mask and gathers
the survivors directly, while ``compact="dpp"`` routes the identical
compaction through the device-routed, instrumented
:func:`repro.dpp.primitives.stream_compact` primitive -- differential tests
hold the two routes equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dpp.primitives import stream_compact
from repro.rendering.framebuffer import Framebuffer

__all__ = [
    "RunImage",
    "active_mask",
    "expand_runs",
    "payload_fragments",
    "runs_from_pixels",
    "run_image_from_framebuffer",
]


def runs_from_pixels(pixels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Contiguous ``(offsets, lengths)`` runs of an ascending pixel-id array."""
    pixels = np.asarray(pixels, dtype=np.int64)
    if len(pixels) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    breaks = np.flatnonzero(np.diff(pixels) != 1)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks + 1, [len(pixels)]))
    return pixels[starts], (stops - starts).astype(np.int64)


def expand_runs(offsets: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Invert :func:`runs_from_pixels`: the ascending active pixel ids."""
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.repeat(offsets, lengths)
    first = np.repeat(np.cumsum(lengths) - lengths, lengths)
    return starts + (np.arange(total, dtype=np.int64) - first)


def active_mask(rgba: np.ndarray, depth: np.ndarray, mode: str) -> np.ndarray:
    """Which pixels carry a contribution, per compositing mode (see module doc)."""
    if mode == "depth":
        return np.isfinite(np.asarray(depth).reshape(-1))
    if mode == "over":
        return np.asarray(rgba).reshape(-1, 4)[:, 3] > 0.0
    raise ValueError(f"unknown compositing mode {mode!r}")


@dataclass
class RunImage:
    """One rank's contribution as compacted active pixels (SoA payload)."""

    width: int
    height: int
    pixels: np.ndarray
    rgba: np.ndarray
    depth: np.ndarray
    key: int = 0
    _positions: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.pixels = np.asarray(self.pixels, dtype=np.int64)
        self.rgba = np.asarray(self.rgba, dtype=np.float64)
        self.depth = np.asarray(self.depth, dtype=np.float64)
        total = len(self.pixels)
        if self.rgba.shape != (total, 4):
            raise ValueError(f"rgba must have shape ({total}, 4) to match the active pixels")
        if self.depth.shape != (total,):
            raise ValueError(f"depth must have shape ({total},) to match the active pixels")

    # -- shape ----------------------------------------------------------------------
    @property
    def num_pixels(self) -> int:
        return self.width * self.height

    @property
    def active_pixels(self) -> int:
        """Pixels carrying a contribution -- the per-rank ``AP`` of Eq. 5.5."""
        return len(self.pixels)

    # -- the run-length view ----------------------------------------------------------
    @property
    def _run_positions(self) -> np.ndarray:
        """Payload positions where a new contiguous run starts (excluding 0)."""
        if self._positions is None:
            self._positions = np.flatnonzero(np.diff(self.pixels) != 1) + 1
        return self._positions

    @property
    def num_runs(self) -> int:
        return 0 if len(self.pixels) == 0 else 1 + len(self._run_positions)

    @property
    def run_offsets(self) -> np.ndarray:
        """Start pixel of each contiguous active run."""
        if len(self.pixels) == 0:
            return np.empty(0, dtype=np.int64)
        return self.pixels[np.concatenate(([0], self._run_positions))]

    @property
    def run_lengths(self) -> np.ndarray:
        """Length of each contiguous active run."""
        if len(self.pixels) == 0:
            return np.empty(0, dtype=np.int64)
        bounds = np.concatenate(([0], self._run_positions, [len(self.pixels)]))
        return np.diff(bounds).astype(np.int64)

    # -- construction ---------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        pixels: np.ndarray,
        rgba: np.ndarray,
        depth: np.ndarray,
        width: int,
        height: int,
        key: int = 0,
    ) -> "RunImage":
        """Build from ascending active pixel ids plus their SoA payload."""
        return cls(width, height, pixels, rgba, depth, key=key)

    # -- pieces (the exchange granularity) ---------------------------------------------
    def _slice_bounds(self, start: int, stop: int) -> tuple[int, int]:
        return (
            int(np.searchsorted(self.pixels, start, side="left")),
            int(np.searchsorted(self.pixels, stop, side="left")),
        )

    def fragments(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(pixels, rgba, depth)`` views restricted to the run ``[start, stop)``."""
        lo, hi = self._slice_bounds(start, stop)
        return self.pixels[lo:hi], self.rgba[lo:hi], self.depth[lo:hi]

    def wire_bytes(self, lo: int, hi: int, with_depth: bool) -> float:
        """Simulated wire size of payload slice ``[lo, hi)`` in run-length encoding.

        The wire layout is IceT-style compressed sub-images: a 16-byte
        ``(offset, length)`` header per run, 32 bytes of straight-alpha RGBA
        per active pixel, 8 more bytes per pixel for the depth plane in
        ``"depth"`` mode (``"over"`` sends the scalar visibility key
        instead), plus a 64-byte message header.
        """
        active = hi - lo
        if active <= 0:
            return 64.0
        if self._positions is not None:
            positions = self._positions
            runs = 1 + int(
                np.searchsorted(positions, hi, side="left") - np.searchsorted(positions, lo, side="right")
            )
        else:
            # Count run breaks inside the slice directly -- cheaper than
            # materializing the whole image's run positions for one piece.
            runs = 1 + int(np.count_nonzero(np.diff(self.pixels[lo:hi]) != 1))
        return 64.0 + 16.0 * runs + (40.0 if with_depth else 32.0) * active

    def piece_message(self, start: int, stop: int, with_depth: bool = True):
        """The exchange form of ``[start, stop)``: ``(payload, wire_bytes)``.

        ``payload`` is ``(pixels, rgba, depth_or_None, key)`` -- zero-copy
        views handed straight to the receiving rank (all ranks share the
        process), while ``wire_bytes`` is the run-length-encoded size the
        simulated network charges for the transfer (see :meth:`wire_bytes`).
        ``"over"`` compositing sends no depth plane: the scalar visibility
        key stands in for it.
        """
        lo, hi = self._slice_bounds(start, stop)
        payload = (
            self.pixels[lo:hi],
            self.rgba[lo:hi],
            self.depth[lo:hi] if with_depth else None,
            self.key,
        )
        return payload, self.wire_bytes(lo, hi, with_depth)

    def piece_wire_table(self, edges: np.ndarray, with_depth: bool = True) -> np.ndarray:
        """Vectorized :meth:`wire_bytes` for every interval ``[edges[i], edges[i+1])``.

        Returns the ``(len(edges) - 1,)`` float array of simulated wire sizes
        without materializing any payload views -- the streaming direct-send
        accounting needs one such row per source rank (P entries each), and a
        per-piece Python loop would make that O(P^2) interpreter work.
        """
        edges = np.asarray(edges, dtype=np.int64)
        bounds = np.searchsorted(self.pixels, edges)
        active = np.diff(bounds)
        positions = self._run_positions
        run_low = np.searchsorted(positions, bounds[:-1], side="right")
        run_high = np.searchsorted(positions, bounds[1:], side="left")
        runs = 1 + (run_high - run_low)
        per_pixel = 40.0 if with_depth else 32.0
        nbytes = 64.0 + 16.0 * runs + per_pixel * active
        return np.where(active > 0, nbytes, 64.0)

    def piece_table(self, edges: np.ndarray, with_depth: bool = True) -> list:
        """:meth:`piece_message` for every interval ``[edges[i], edges[i+1])``.

        One vectorized slicing pass replaces per-piece ``searchsorted`` calls
        when an image is cut along a whole partition (direct-send's P pieces,
        radix-k's k pieces).  Returns a list of ``(payload, wire_bytes)``.
        """
        edges = np.asarray(edges, dtype=np.int64)
        bounds = np.searchsorted(self.pixels, edges)
        positions = self._run_positions
        run_low = np.searchsorted(positions, bounds[:-1], side="right")
        run_high = np.searchsorted(positions, bounds[1:], side="left")
        per_pixel = 40.0 if with_depth else 32.0
        messages = []
        for index in range(len(edges) - 1):
            lo, hi = int(bounds[index]), int(bounds[index + 1])
            active = hi - lo
            if active <= 0:
                nbytes = 64.0
            else:
                nbytes = 64.0 + 16.0 * (1 + int(run_high[index] - run_low[index])) + per_pixel * active
            payload = (
                self.pixels[lo:hi],
                self.rgba[lo:hi],
                self.depth[lo:hi] if with_depth else None,
                self.key,
            )
            messages.append((payload, nbytes))
        return messages


def payload_fragments(payload) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, int]:
    """Unpack a :meth:`RunImage.piece_message` payload into merge fragments.

    ``depth`` is ``None`` for ``"over"`` payloads (the scalar key carries the
    visibility order; see :mod:`repro.compositing.merge`).
    """
    pixels, rgba, depth, key = payload
    return pixels, rgba, depth, int(key)


def run_image_from_framebuffer(
    framebuffer: Framebuffer, mode: str, key: int = 0, compact: str = "inline"
) -> RunImage:
    """Compact one rank's framebuffer into a :class:`RunImage`.

    ``compact`` selects how the active pixels are gathered:

    * ``"inline"`` (default) -- the stream-compaction idiom executed
      directly (reverse-index the mask, gather the survivors); this is the
      hot path the compositor uses, with no per-primitive ceremony.
    * ``"dpp"`` -- the device-routed :func:`repro.dpp.primitives.stream_compact`
      primitive (reduce + scan + reverse-index + gather), instrumented by the
      op counters like the renderers' own hot paths.  Differential tests
      hold both routes to identical results.
    """
    rgba = framebuffer.rgba.reshape(-1, 4)
    depth = framebuffer.depth.reshape(-1)
    mask = active_mask(rgba, depth, mode)
    if compact == "dpp":
        pixel_ids = np.arange(framebuffer.num_pixels, dtype=np.int64)
        _, (pixels, active_rgba, active_depth) = stream_compact(mask, pixel_ids, rgba, depth)
        active_rgba = np.asarray(active_rgba, dtype=np.float64)
        active_depth = np.asarray(active_depth, dtype=np.float64)
    elif compact == "inline":
        pixels = np.flatnonzero(mask)
        active_rgba = rgba[pixels]
        active_depth = depth[pixels]
    else:
        raise ValueError(f"unknown compaction route {compact!r}; choose 'inline' or 'dpp'")
    if mode == "over":
        active_depth = np.full(len(pixels), float(key))
    return RunImage(framebuffer.width, framebuffer.height, pixels, active_rgba, active_depth, key=key)
