"""Sort-last parallel image compositing (the IceT analogue).

Each simulated MPI task renders its own block into a full-resolution
framebuffer; the compositor then merges those sub-images into one final image
using one of three classic algorithms -- direct send, binary swap, or
Radix-k -- exchanging pixel data through the
:class:`repro.runtime.communicator.SimulatedCommunicator` so that message
volume (and hence estimated network time) is accounted exactly.

Two merge modes are supported:

* ``"depth"`` -- z-buffer minimum, used by the surface renderers
  (rasterization and ray tracing);
* ``"over"`` -- front-to-back alpha blending in visibility order, used by the
  volume renderers.
"""

from repro.compositing.algorithms import RadixFactorError, StreamStats, validate_radices
from repro.compositing.compositor import CompositeResult, Compositor
from repro.compositing.image import SubImage, composite_pixels
from repro.compositing.reference import composite_reference
from repro.compositing.runimage import RunImage, run_image_from_framebuffer
from repro.compositing.scenarios import SCENARIOS, scene_factory

__all__ = [
    "SCENARIOS",
    "CompositeResult",
    "Compositor",
    "RadixFactorError",
    "RunImage",
    "StreamStats",
    "SubImage",
    "composite_pixels",
    "composite_reference",
    "run_image_from_framebuffer",
    "scene_factory",
    "validate_radices",
]
