"""The dense per-run reference compositors (the fast path's correctness oracle).

These are the original pure-Python exchange drivers: every rank holds a dense
:class:`~repro.compositing.image.SubImage`, pixel runs travel one
``send``/``recv`` pair at a time, and every merge is one
:func:`~repro.compositing.image.composite_pixels` call over a dense slice.
They are deliberately kept byte-for-byte equivalent to the pre-refactor
implementation and exposed through :func:`composite_reference`, mirroring the
``render_reference`` contract of the volume renderers: the run-length fast
path in :mod:`repro.compositing.algorithms` must stay within ``1e-10`` of
this code on every algorithm, mode, and rank count (see
``tests/test_compositing_fast.py``).

Ordering note: the OVER operator is only associative when every pairwise
merge combines fragments that are *adjacent and contiguous* in visibility
order.  The callers therefore hand the algorithms their sub-images already
sorted by visibility (see :class:`repro.compositing.compositor.Compositor`),
and every merge loop below folds incoming pieces in ascending rank order, so
each intermediate fragment always covers a contiguous run of the visibility
order.  Depth (z-buffer) compositing is commutative, so the same code is
trivially correct for surface images.
"""

from __future__ import annotations

import numpy as np

from repro.compositing.algorithms import (
    _mixed_radix_digits,
    _pixel_partition,
    factor_radices,
    validate_radices,
)
from repro.compositing.image import SubImage, composite_pixels
from repro.runtime.communicator import SimulatedCommunicator

__all__ = [
    "composite_reference",
    "direct_send_reference",
    "binary_swap_reference",
    "radix_k_reference",
]


def _ordered_fold(
    pieces: list[tuple[int, np.ndarray, np.ndarray]], mode: str
) -> tuple[np.ndarray, np.ndarray, int]:
    """Composite pixel runs in ascending key order; returns ``(rgba, depth, merges)``.

    ``pieces`` holds ``(order_key, rgba, depth)`` tuples covering the same
    pixel run.  Folding in ascending key order keeps every intermediate
    fragment contiguous in visibility order, which makes pairwise OVER exact.
    """
    pieces = sorted(pieces, key=lambda item: item[0])
    _, rgba, depth = pieces[0]
    merges = 0
    for _, rgba_next, depth_next in pieces[1:]:
        rgba, depth = composite_pixels(rgba, depth, rgba_next, depth_next, mode)
        merges += 1
    return rgba, depth, merges


def assemble_at_root(
    owned: dict[int, tuple[int, int]],
    images: list[SubImage],
    comm: SimulatedCommunicator,
) -> SubImage:
    """Gather each rank's owned pixel run at rank 0 and assemble the final image.

    ``owned`` maps rank to its ``(start, stop)`` run within ``images[rank]``.
    """
    final = images[0].copy()
    comm.next_round()
    for rank, (start, stop) in owned.items():
        if rank == 0 or start >= stop:
            continue
        rgba, depth = images[rank].piece(start, stop)
        comm.rank(rank).send(0, (rgba, depth, start, stop), tag=7)
    for rank, (start, stop) in owned.items():
        if rank == 0 or start >= stop:
            continue
        rgba, depth, start, stop = comm.rank(0).recv(rank, tag=7)
        final.rgba[start:stop] = rgba
        final.depth[start:stop] = depth
    return final


def direct_send_reference(
    images: list[SubImage], comm: SimulatedCommunicator, mode: str
) -> tuple[SubImage, int]:
    """Direct-send compositing; returns ``(final_image_at_root, merge_operations)``."""
    size = comm.size
    if len(images) != size:
        raise ValueError("need exactly one sub-image per rank")
    num_pixels = images[0].num_pixels
    partition = _pixel_partition(num_pixels, size)
    merges = 0

    # One exchange round: every rank sends every other rank's run to its owner.
    for source in range(size):
        for owner in range(size):
            if owner == source:
                continue
            start, stop = partition[owner]
            if start >= stop:
                continue
            rgba, depth = images[source].piece(start, stop)
            comm.rank(source).send(owner, (rgba, depth), tag=1)

    # Each owner folds the received runs (plus its own) in rank order.
    for owner in range(size):
        start, stop = partition[owner]
        if start >= stop:
            continue
        pieces = [(owner, images[owner].rgba[start:stop], images[owner].depth[start:stop])]
        for source in range(size):
            if source == owner:
                continue
            rgba_in, depth_in = comm.rank(owner).recv(source, tag=1)
            pieces.append((source, rgba_in, depth_in))
        rgba, depth, folded = _ordered_fold(pieces, mode)
        merges += folded
        images[owner].rgba[start:stop] = rgba
        images[owner].depth[start:stop] = depth

    owned = {rank: partition[rank] for rank in range(size)}
    final = assemble_at_root(owned, images, comm)
    return final, merges


def binary_swap_reference(
    images: list[SubImage], comm: SimulatedCommunicator, mode: str
) -> tuple[SubImage, int]:
    """Binary-swap compositing with a pairing fold for non-power-of-two task counts."""
    size = comm.size
    if len(images) != size:
        raise ValueError("need exactly one sub-image per rank")
    num_pixels = images[0].num_pixels
    merges = 0

    power = 1
    while power * 2 <= size:
        power *= 2
    extra = size - power

    # Fold phase: the trailing 2*extra ranks are merged pairwise so that the
    # remaining participants hold contiguous runs of the visibility order.
    participants = list(range(size - 2 * extra))
    if extra:
        pair_ranks = list(range(size - 2 * extra, size))
        for first, second in zip(pair_ranks[0::2], pair_ranks[1::2]):
            comm.rank(second).send(first, (images[second].rgba, images[second].depth), tag=2)
        for first, second in zip(pair_ranks[0::2], pair_ranks[1::2]):
            rgba_in, depth_in = comm.rank(first).recv(second, tag=2)
            rgba, depth = composite_pixels(images[first].rgba, images[first].depth, rgba_in, depth_in, mode)
            images[first].rgba, images[first].depth = rgba, depth
            merges += 1
            participants.append(first)
        comm.next_round()
    assert len(participants) == power

    # Swap rounds over participant indices (participants are visibility-ordered).
    owned = {index: (0, num_pixels) for index in range(power)}
    rounds = int(np.log2(power)) if power > 1 else 0
    for round_index in range(rounds):
        bit = 1 << round_index
        for index in range(power):
            partner = index ^ bit
            start, stop = owned[index]
            middle = (start + stop) // 2
            keep_first = index < partner
            send_range = (middle, stop) if keep_first else (start, middle)
            rgba, depth = images[participants[index]].piece(*send_range)
            comm.rank(participants[index]).send(
                participants[partner], (rgba, depth, send_range[0], send_range[1]), tag=3
            )
        for index in range(power):
            partner = index ^ bit
            start, stop = owned[index]
            middle = (start + stop) // 2
            keep_first = index < partner
            keep_range = (start, middle) if keep_first else (middle, stop)
            rank = participants[index]
            rgba_in, depth_in, in_start, in_stop = comm.rank(rank).recv(participants[partner], tag=3)
            if in_stop > in_start:
                pieces = [
                    (index, images[rank].rgba[in_start:in_stop], images[rank].depth[in_start:in_stop]),
                    (partner, rgba_in, depth_in),
                ]
                rgba, depth, folded = _ordered_fold(pieces, mode)
                merges += folded
                images[rank].rgba[in_start:in_stop] = rgba
                images[rank].depth[in_start:in_stop] = depth
            owned[index] = keep_range
        comm.next_round()

    owned_by_rank = {participants[index]: owned[index] for index in range(power)}
    # Rank 0 is always a participant (index 0), so assembly at rank 0 is valid.
    final = assemble_at_root(owned_by_rank, images, comm)
    return final, merges


def radix_k_reference(
    images: list[SubImage],
    comm: SimulatedCommunicator,
    mode: str,
    radices: list[int] | None = None,
) -> tuple[SubImage, int]:
    """Radix-k compositing; ``radices`` defaults to a factorisation of the task count.

    The mixed-radix digit layout keeps every exchange group contiguous in the
    (visibility-ordered) rank numbering, so ordered folding of group pieces
    preserves OVER correctness.
    """
    size = comm.size
    if len(images) != size:
        raise ValueError("need exactly one sub-image per rank")
    num_pixels = images[0].num_pixels
    if radices is None:
        radices = factor_radices(size)
    radices = validate_radices(size, radices)
    merges = 0

    owned = {rank: (0, num_pixels) for rank in range(size)}
    digits = {rank: _mixed_radix_digits(rank, radices) for rank in range(size)}
    stride = 1
    for round_index, radix in enumerate(radices):
        # Exchange phase: every rank sends each group partner its piece.
        for rank in range(size):
            my_digit = digits[rank][round_index]
            start, stop = owned[rank]
            pieces = _pixel_partition(stop - start, radix)
            pieces = [(start + a, start + b) for a, b in pieces]
            for member_digit in range(radix):
                if member_digit == my_digit:
                    continue
                partner = rank + (member_digit - my_digit) * stride
                send_start, send_stop = pieces[member_digit]
                rgba, depth = images[rank].piece(send_start, send_stop)
                comm.rank(rank).send(partner, (rgba, depth, send_start, send_stop, my_digit), tag=4)
        # Merge phase: fold the group's pieces in digit order.
        for rank in range(size):
            my_digit = digits[rank][round_index]
            start, stop = owned[rank]
            pieces = _pixel_partition(stop - start, radix)
            pieces = [(start + a, start + b) for a, b in pieces]
            keep_start, keep_stop = pieces[my_digit]
            incoming = [
                (my_digit, images[rank].rgba[keep_start:keep_stop], images[rank].depth[keep_start:keep_stop])
            ]
            for member_digit in range(radix):
                if member_digit == my_digit:
                    continue
                partner = rank + (member_digit - my_digit) * stride
                rgba_in, depth_in, in_start, in_stop, sender_digit = comm.rank(rank).recv(partner, tag=4)
                if in_stop > in_start:
                    incoming.append((sender_digit, rgba_in, depth_in))
            if keep_stop > keep_start and len(incoming) > 1:
                rgba, depth, folded = _ordered_fold(incoming, mode)
                merges += folded
                images[rank].rgba[keep_start:keep_stop] = rgba
                images[rank].depth[keep_start:keep_stop] = depth
            owned[rank] = (keep_start, keep_stop)
        comm.next_round()
        stride *= radix

    final = assemble_at_root(owned, images, comm)
    return final, merges


_REFERENCE_ALGORITHMS = {
    "direct-send": direct_send_reference,
    "binary-swap": binary_swap_reference,
    "radix-k": radix_k_reference,
}


def composite_reference(
    algorithm: str,
    images: list[SubImage],
    comm: SimulatedCommunicator,
    mode: str,
    radices: list[int] | None = None,
) -> tuple[SubImage, int]:
    """Run one dense reference driver; the differential oracle of the fast path."""
    if algorithm not in _REFERENCE_ALGORITHMS:
        raise ValueError(
            f"unknown compositing algorithm {algorithm!r}; choose from {sorted(_REFERENCE_ALGORITHMS)}"
        )
    if algorithm == "radix-k":
        return radix_k_reference(images, comm, mode, radices)
    return _REFERENCE_ALGORITHMS[algorithm](images, comm, mode)
