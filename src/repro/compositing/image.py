"""Sub-images and the pixel-merge operators used by every compositing algorithm."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rendering.framebuffer import Framebuffer

__all__ = ["SubImage", "composite_pixels", "from_framebuffer"]


def composite_pixels(
    rgba_front_candidate: np.ndarray,
    depth_a: np.ndarray,
    rgba_b: np.ndarray,
    depth_b: np.ndarray,
    mode: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two pixel runs.

    Parameters
    ----------
    rgba_front_candidate, depth_a:
        First fragment run (``(n, 4)`` straight-alpha colors and ``(n,)``
        depth / visibility order).
    rgba_b, depth_b:
        Second fragment run with the same shapes.
    mode:
        ``"depth"`` for nearest-fragment selection (z-buffer), ``"over"`` for
        front-to-back alpha blending where the fragment with the smaller depth
        value is in front.

    Returns
    -------
    (rgba, depth):
        The merged fragment run.  For ``"over"`` the returned depth is the
        minimum of the inputs (the merged fragment is at least as close as
        its front constituent).
    """
    rgba_a = np.asarray(rgba_front_candidate, dtype=np.float64)
    rgba_b = np.asarray(rgba_b, dtype=np.float64)
    depth_a = np.asarray(depth_a, dtype=np.float64)
    depth_b = np.asarray(depth_b, dtype=np.float64)
    if mode == "depth":
        take_a = depth_a <= depth_b
        rgba = np.where(take_a[:, None], rgba_a, rgba_b)
        depth = np.where(take_a, depth_a, depth_b)
        return rgba, depth
    if mode == "over":
        a_in_front = depth_a <= depth_b
        front = np.where(a_in_front[:, None], rgba_a, rgba_b)
        back = np.where(a_in_front[:, None], rgba_b, rgba_a)
        alpha_front = front[:, 3:4]
        rgb = front[:, :3] * alpha_front + back[:, :3] * back[:, 3:4] * (1.0 - alpha_front)
        alpha = front[:, 3] + back[:, 3] * (1.0 - front[:, 3])
        safe_alpha = np.where(alpha > 0.0, alpha, 1.0)
        # Store straight (un-premultiplied) color so repeated merges compose.
        rgba = np.concatenate([rgb / safe_alpha[:, None], alpha[:, None]], axis=1)
        return rgba, np.minimum(depth_a, depth_b)
    raise ValueError(f"unknown compositing mode {mode!r}")


@dataclass
class SubImage:
    """One rank's contribution to the final image.

    Attributes
    ----------
    rgba:
        ``(num_pixels, 4)`` straight-alpha colors (flattened row-major).
    depth:
        ``(num_pixels,)`` depth for z-buffer mode, or a constant visibility
        order for alpha-blend mode.
    width, height:
        Full image dimensions (all sub-images cover the full viewport, as in
        sort-last rendering).
    """

    rgba: np.ndarray
    depth: np.ndarray
    width: int
    height: int

    def __post_init__(self) -> None:
        self.rgba = np.asarray(self.rgba, dtype=np.float64)
        self.depth = np.asarray(self.depth, dtype=np.float64)
        expected = self.width * self.height
        if self.rgba.shape != (expected, 4):
            raise ValueError(f"rgba must have shape ({expected}, 4)")
        if self.depth.shape != (expected,):
            raise ValueError(f"depth must have shape ({expected},)")

    @property
    def num_pixels(self) -> int:
        return self.width * self.height

    def active_pixels(self) -> int:
        """Pixels carrying any contribution (non-zero alpha or finite depth)."""
        return int(np.count_nonzero((self.rgba[:, 3] > 0.0) | np.isfinite(self.depth)))

    def piece(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        """A contiguous pixel run (used by the exchange algorithms)."""
        return self.rgba[start:stop], self.depth[start:stop]

    def to_framebuffer(
        self, background: tuple[float, float, float, float] = (1.0, 1.0, 1.0, 0.0)
    ) -> Framebuffer:
        """Convert back to a :class:`Framebuffer`."""
        framebuffer = Framebuffer(self.width, self.height, background)
        framebuffer.rgba = self.rgba.reshape(self.height, self.width, 4).copy()
        framebuffer.depth = self.depth.reshape(self.height, self.width).copy()
        return framebuffer

    def copy(self) -> "SubImage":
        return SubImage(self.rgba.copy(), self.depth.copy(), self.width, self.height)


def from_framebuffer(framebuffer: Framebuffer, visibility_order: float | None = None) -> SubImage:
    """Build a :class:`SubImage` from a rank's framebuffer.

    ``visibility_order`` replaces the per-pixel depth with a constant rank
    order for alpha-blend (volume) compositing; surface compositing keeps the
    real depth buffer.
    """
    rgba = framebuffer.rgba.reshape(-1, 4).copy()
    if visibility_order is None:
        depth = framebuffer.depth.reshape(-1).copy()
    else:
        depth = np.full(framebuffer.num_pixels, float(visibility_order))
    return SubImage(rgba, depth, framebuffer.width, framebuffer.height)
