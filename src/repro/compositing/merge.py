"""Batched fragment merging: the pixel-blend kernels of the fast compositing path.

The dense reference path (:mod:`repro.compositing.reference`) merges pixel
runs one pair at a time with :func:`repro.compositing.image.composite_pixels`
-- O(pixels · pieces) Python work per compositing round.  The fast path
resolves each merge group (one rank's owned interval in one round) with a
constant number of array operations, through two kernels:

* :func:`merge_sorted_pair` -- vectorized union of two pixel-sorted fragment
  streams (two-pointer merge via ``searchsorted``, no sort).  Shared pixels
  are blended with exactly the straight-alpha OVER formula of
  ``composite_pixels`` (``"over"``), or selected by nearest depth with
  smallest-key tie-breaking (``"depth"``).  Narrow groups -- binary-swap's
  pairs, radix-k's k-way groups -- fold through this kernel in ascending
  visibility-key order, the association of the reference's
  ``_ordered_fold``, so results agree to floating-point roundoff (well
  inside the 1e-10 differential tolerance).
* :func:`merge_fragments` -- the wide-group path (direct-send's P-way
  folds): one combined-key sort groups the whole round's fragment bag per
  pixel -- every group offset into the disjoint band
  ``group_id * num_pixels + pixel`` -- then the device-routed
  :func:`repro.dpp.primitives.segmented_argmin` picks each pixel's nearest
  fragment (``"depth"``), or the fragments are folded front-to-back one
  *visibility layer* at a time with vectorized OVER blends (``"over"``).

``"over"`` merging tracks visibility through the integer keys alone; the
per-pixel depth of an over-mode merge is not meaningful and is returned as
zeros (the final image's depth plane is the front-most visibility position,
written at assembly).
"""

from __future__ import annotations

import numpy as np

from repro.dpp.primitives import gather, segmented_argmin

__all__ = ["merge_fragments", "merge_sorted_pair", "merge_groups", "fold_bag_into_partial"]

#: Groups with at most this many fragment sets fold pairwise through
#: :func:`merge_sorted_pair`; wider groups (direct-send) use the sorted bag.
PAIRWISE_FOLD_MAX_SETS = 8

#: Shared ascending-index pool; slicing it replaces per-merge ``np.arange``
#: allocations (grown on demand for larger images).
_INDEX_POOL = np.arange(1 << 18, dtype=np.int64)


def _indices(count: int) -> np.ndarray:
    global _INDEX_POOL
    if count > len(_INDEX_POOL):
        _INDEX_POOL = np.arange(max(count, 2 * len(_INDEX_POOL)), dtype=np.int64)
    return _INDEX_POOL[:count]


def _blend_over(front_rgba: np.ndarray, back_rgba: np.ndarray) -> np.ndarray:
    """Front-to-back straight-alpha OVER (the formula of ``composite_pixels``)."""
    alpha_front = front_rgba[:, 3]
    back_weight = back_rgba[:, 3] * (1.0 - alpha_front)
    alpha = alpha_front + back_weight
    safe_alpha = np.where(alpha > 0.0, alpha, 1.0)
    out = np.empty((len(front_rgba), 4), dtype=np.float64)
    rgb = out[:, :3]
    np.multiply(back_rgba[:, :3], back_weight[:, None], out=rgb)
    rgb += front_rgba[:, :3] * alpha_front[:, None]
    rgb /= safe_alpha[:, None]
    out[:, 3] = alpha
    return out


def _align_union(
    front_pix: np.ndarray, back_pix: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Destination layout for the sorted union of two ascending pixel streams.

    Returns ``(out_pix, front_dest, back_dest, shared_front, shared_back)``:
    the union pixel ids, each stream's scatter destinations (``back_dest``
    covers back-only elements, selected by the boolean ``shared_back``'s
    complement), and the aligned positions of the shared pixels in each
    stream (``shared_front`` indexes ``front``, ``shared_back`` is a boolean
    mask over ``back``).
    """
    positions = np.searchsorted(front_pix, back_pix)
    shared_back = (positions < len(front_pix)) & (
        np.take(front_pix, positions, mode="clip") == back_pix
    )
    shared_front = positions[shared_back]
    back_only = ~shared_back
    back_only_pix = back_pix[back_only]
    # positions[back_only] counts the front elements before each back-only
    # pixel; histogramming those insertion points gives the back-only count
    # before each front element in linear time (no second binary search).
    back_only_positions = positions[back_only]
    inserted_before = np.cumsum(np.bincount(back_only_positions, minlength=len(front_pix) + 1))
    front_dest = _indices(len(front_pix)) + inserted_before[: len(front_pix)]
    back_dest = _indices(len(back_only_pix)) + back_only_positions
    out_pix = np.empty(len(front_pix) + len(back_only_pix), dtype=np.int64)
    out_pix[front_dest] = front_pix
    out_pix[back_dest] = back_only_pix
    return out_pix, front_dest, back_dest, shared_front, shared_back


def merge_sorted_pair(
    front: tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None],
    back: tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None],
    mode: str,
) -> tuple[tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None], int]:
    """Union-merge two pixel-sorted fragment streams without a sort.

    Each stream is ``(pixels, rgba, depth, keys)`` with strictly ascending
    pixels.  For ``"over"`` the ``front`` stream must be entirely in front of
    ``back`` (the exchange algorithms fold in ascending key order, which
    guarantees it); ``depth`` and ``keys`` may be ``None`` and are ignored.
    For ``"depth"`` both are required, and per-element ``keys`` break
    equal-depth ties toward the smaller key, matching the serial
    first-minimum sweep of the reference fold.

    Returns ``((pixels, rgba, depth, keys), merge_ops)`` where ``merge_ops``
    counts the shared pixels that were actually blended.
    """
    front_pix, front_rgba, front_depth, front_keys = front
    back_pix, back_rgba, back_depth, back_keys = back
    if len(front_pix) == 0:
        return back, 0
    if len(back_pix) == 0:
        return front, 0
    if mode not in ("depth", "over"):
        raise ValueError(f"unknown compositing mode {mode!r}")
    with_depth = mode == "depth"

    out_pix, front_dest, back_dest, shared_front, shared_back = _align_union(front_pix, back_pix)
    back_only = ~shared_back
    total = len(out_pix)
    out_rgba = np.empty((total, 4), dtype=np.float64)
    out_rgba[front_dest] = front_rgba
    out_rgba[back_dest] = back_rgba[back_only]
    out_depth = out_keys = None
    if with_depth:
        out_depth = np.empty(total, dtype=np.float64)
        out_depth[front_dest] = front_depth
        out_depth[back_dest] = back_depth[back_only]
        out_keys = np.empty(total, dtype=np.int64)
        out_keys[front_dest] = front_keys
        out_keys[back_dest] = back_keys[back_only]

    merge_ops = len(front_pix) + len(back_pix) - total
    if merge_ops:
        shared_dest = front_dest[shared_front]
        if with_depth:
            depth_a = front_depth[shared_front]
            depth_b = back_depth[shared_back]
            keys_a = front_keys[shared_front]
            keys_b = back_keys[shared_back]
            take_b = (depth_b < depth_a) | ((depth_b == depth_a) & (keys_b < keys_a))
            out_rgba[shared_dest] = np.where(
                take_b[:, None], back_rgba[shared_back], front_rgba[shared_front]
            )
            out_depth[shared_dest] = np.where(take_b, depth_b, depth_a)
            out_keys[shared_dest] = np.where(take_b, keys_b, keys_a)
        else:
            out_rgba[shared_dest] = _blend_over(front_rgba[shared_front], back_rgba[shared_back])
    return (out_pix, out_rgba, out_depth, out_keys), merge_ops


def merge_fragments(
    pixels: np.ndarray,
    keys: np.ndarray | None,
    rgba: np.ndarray,
    depth: np.ndarray | None,
    mode: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Merge an arbitrary bag of fragments down to one fragment per pixel.

    Parameters
    ----------
    pixels:
        ``(F,)`` int64 pixel ids (several fragments may share a pixel).
    keys:
        ``(F,)`` non-negative integer visibility keys; within one pixel, keys
        are distinct and ascending key must equal ascending (front-to-back)
        depth -- the precondition the exchange algorithms guarantee.  Pass
        ``None`` when the fragments are already concatenated in ascending
        key order (per pixel); position then serves as the implicit key.
    rgba, depth:
        ``(F, 4)`` straight-alpha colors and ``(F,)`` depths (``depth`` is
        required for ``"depth"``, ignored -- may be ``None`` -- for
        ``"over"``).
    mode:
        ``"depth"`` (z-buffer nearest) or ``"over"`` (front-to-back blend).

    Returns
    -------
    (pixels, rgba, depth, merge_ops):
        One fragment per unique pixel, ascending; ``merge_ops`` counts the
        equivalent pairwise merges (fragments minus surviving pixels).  The
        returned depth is zeros for ``"over"`` (see module doc).
    """
    pixels = np.asarray(pixels, dtype=np.int64)
    if len(pixels) == 0:
        return pixels, np.empty((0, 4)), np.empty(0), 0
    if mode not in ("depth", "over"):
        raise ValueError(f"unknown compositing mode {mode!r}")
    if keys is None:
        # The caller concatenated fragments in ascending key order, so a
        # stable sort on the pixel id alone keeps front-to-back order within
        # each pixel, and the fragment position doubles as the tie-break key.
        order = np.argsort(pixels, kind="stable")
        keys_sorted = None
    else:
        # One flat sort on a combined (pixel, key) code replaces a two-pass
        # lexsort; codes are unique, so an unstable sort is deterministic.
        keys = np.asarray(keys, dtype=np.int64)
        span = int(keys.max()) + 1
        order = np.argsort(pixels * span + keys)
        keys_sorted = keys[order]
    pixels_sorted = pixels[order]
    rgba_sorted = np.asarray(rgba, dtype=np.float64)[order]

    boundary = np.empty(len(pixels_sorted), dtype=bool)
    boundary[0] = True
    np.not_equal(pixels_sorted[1:], pixels_sorted[:-1], out=boundary[1:])
    segment_starts = np.flatnonzero(boundary)
    unique_pixels = pixels_sorted[segment_starts]
    merge_ops = int(len(pixels_sorted) - len(segment_starts))

    if mode == "depth":
        depth_sorted = np.asarray(depth, dtype=np.float64)[order]
        if keys_sorted is None:
            keys_sorted = np.arange(len(pixels_sorted), dtype=np.int64)
        winners = segmented_argmin(depth_sorted, segment_starts, keys_sorted)
        return unique_pixels, gather(rgba_sorted, winners), gather(depth_sorted, winners), merge_ops

    # Visibility layer of each fragment within its pixel: 0 is front-most.
    # Layer j of a segment sits at segment_start + j, so each fold level
    # selects its rows straight from the segment table -- no second sort.
    counts = np.diff(np.append(segment_starts, len(pixels_sorted)))
    acc_rgba = rgba_sorted[segment_starts].copy()
    if merge_ops:
        for depth_layer in range(1, int(counts.max())):
            segments = np.flatnonzero(counts > depth_layer)
            rows = segment_starts[segments] + depth_layer
            acc_rgba[segments] = _blend_over(acc_rgba[segments], rgba_sorted[rows])
    return unique_pixels, acc_rgba, np.zeros(len(unique_pixels)), merge_ops


def fold_bag_into_partial(
    partial: tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None] | None,
    pixels: np.ndarray,
    rgba: np.ndarray,
    depth: np.ndarray | None,
    keys: np.ndarray | None,
    mode: str,
) -> tuple[tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None], int]:
    """Fold one cohort's fragment bag onto a running one-fragment-per-pixel partial.

    This is the streaming counterpart of :func:`merge_fragments`: the cohort
    scheduler generates a bounded batch of rank images, concatenates their
    fragments into a bag, folds the bag here, and retires the batch -- so a
    P-way composite never holds more than a cohort of live images plus the
    partial.  The bag must be concatenated in ascending visibility-key order
    (per pixel), the same precondition the in-memory bag path relies on.

    ``partial`` is ``None`` (first cohort) or ``(pixels, rgba, depth, keys)``
    with strictly ascending unique pixels.  For ``"over"`` the partial is
    strictly in *front* of the bag (cohorts stream in ascending key order);
    ``depth``/``keys`` are ignored and carried as ``None``.  For ``"depth"``
    the bag ``keys`` and ``depth`` are required, and the partial carries the
    winning fragment's depth and key so later cohorts keep tie-breaking
    exactly as the dense tournament does.

    The per-pixel operation chain is *identical* to folding the concatenated
    bags of every cohort through :func:`merge_fragments` at once: ``"depth"``
    is a pure (depth, key)-lexicographic selection (associative, exact), and
    ``"over"`` continues the same strict front-to-back left fold per pixel --
    the blends are elementwise, so batching per cohort cannot change a single
    bit of the result.  ``merge_ops`` telescopes the same way: summed over
    cohorts it equals fragments minus surviving pixels, the dense count.

    Returns ``((pixels, rgba, depth, keys), merge_ops)``.
    """
    if mode not in ("depth", "over"):
        raise ValueError(f"unknown compositing mode {mode!r}")
    with_depth = mode == "depth"
    if partial is None:
        empty = np.empty(0, dtype=np.int64)
        partial = (
            empty,
            np.empty((0, 4), dtype=np.float64),
            np.empty(0, dtype=np.float64) if with_depth else None,
            empty.copy() if with_depth else None,
        )
    pixels = np.asarray(pixels, dtype=np.int64)
    if len(pixels) == 0:
        return partial, 0

    # The bag arrives concatenated in ascending key order per pixel, so a
    # stable sort on the pixel id alone preserves front-to-back order within
    # each pixel (exactly the keys=None contract of merge_fragments).
    order = np.argsort(pixels, kind="stable")
    pixels_sorted = pixels[order]
    rgba_sorted = np.asarray(rgba, dtype=np.float64)[order]
    boundary = np.empty(len(pixels_sorted), dtype=bool)
    boundary[0] = True
    np.not_equal(pixels_sorted[1:], pixels_sorted[:-1], out=boundary[1:])
    segment_starts = np.flatnonzero(boundary)
    unique_pixels = pixels_sorted[segment_starts]
    bag_ops = int(len(pixels_sorted) - len(segment_starts))

    if with_depth:
        if depth is None or keys is None:
            raise ValueError("'depth' streaming folds require bag depth and keys")
        depth_sorted = np.asarray(depth, dtype=np.float64)[order]
        keys_sorted = np.asarray(keys, dtype=np.int64)[order]
        winners = segmented_argmin(depth_sorted, segment_starts, keys_sorted)
        bag = (
            unique_pixels,
            gather(rgba_sorted, winners),
            gather(depth_sorted, winners),
            keys_sorted[winners],
        )
        merged, shared_ops = merge_sorted_pair(partial, bag, "depth")
        return merged, bag_ops + shared_ops

    part_pix, part_rgba = partial[0], partial[1]
    if len(part_pix) == 0:
        out_pix = unique_pixels
        out_rgba = rgba_sorted[segment_starts].copy()
        bag_dest = _indices(len(unique_pixels))
        shared_ops = 0
    else:
        out_pix, front_dest, back_dest, shared_front, shared_back = _align_union(
            part_pix, unique_pixels
        )
        out_rgba = np.empty((len(out_pix), 4), dtype=np.float64)
        out_rgba[front_dest] = part_rgba
        out_rgba[back_dest] = rgba_sorted[segment_starts[~shared_back]]
        # Where the partial already owns the pixel, the bag's front-most layer
        # blends *behind* it -- the continuation of the running left fold.
        shared_ops = int(np.count_nonzero(shared_back))
        if shared_ops:
            shared_dest = front_dest[shared_front]
            out_rgba[shared_dest] = _blend_over(
                part_rgba[shared_front], rgba_sorted[segment_starts[shared_back]]
            )
        bag_dest = np.empty(len(unique_pixels), dtype=np.int64)
        bag_dest[shared_back] = front_dest[shared_front]
        bag_dest[~shared_back] = back_dest
    counts = np.diff(np.append(segment_starts, len(pixels_sorted)))
    if bag_ops:
        for depth_layer in range(1, int(counts.max())):
            segments = np.flatnonzero(counts > depth_layer)
            rows = segment_starts[segments] + depth_layer
            dest = bag_dest[segments]
            out_rgba[dest] = _blend_over(out_rgba[dest], rgba_sorted[rows])
    return (out_pix, out_rgba, None, None), bag_ops + shared_ops


def _fold_groups_over(
    groups: list[tuple[int, list[tuple[int, np.ndarray, np.ndarray, np.ndarray | None]]]],
    widest: int,
) -> tuple[dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]], int]:
    """Ascending-key OVER fold of narrow groups with level-batched blends.

    Per fold level the union alignment runs per group (cache-resident int
    work), but the shared-pixel OVER blends of *all* groups are concatenated
    into a single :func:`_blend_over` call, amortizing the blend's
    array-operation overhead across the round.  The per-group fold order is
    exactly :func:`merge_sorted_pair`'s, so results are identical.
    """
    merge_ops = 0
    state: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    ordered = [
        (group_id, sorted(fragment_sets, key=lambda item: item[0]))
        for group_id, fragment_sets in groups
    ]
    for group_id, fragment_sets in ordered:
        _, pixels, rgba, _ = fragment_sets[0]
        state[group_id] = (pixels, rgba)
    for level in range(1, widest):
        deferred: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        for group_id, fragment_sets in ordered:
            if level >= len(fragment_sets):
                continue
            front_pix, front_rgba = state[group_id]
            _, back_pix, back_rgba, _ = fragment_sets[level]
            if len(back_pix) == 0:
                continue
            if len(front_pix) == 0:
                state[group_id] = (back_pix, back_rgba)
                continue
            out_pix, front_dest, back_dest, shared_front, shared_back = _align_union(
                front_pix, back_pix
            )
            out_rgba = np.empty((len(out_pix), 4), dtype=np.float64)
            out_rgba[front_dest] = front_rgba
            out_rgba[back_dest] = back_rgba[~shared_back]
            shared = len(front_pix) + len(back_pix) - len(out_pix)
            if shared:
                merge_ops += shared
                deferred.append(
                    (out_rgba, front_dest[shared_front],
                     front_rgba[shared_front], back_rgba[shared_back])
                )
            state[group_id] = (out_pix, out_rgba)
        if deferred:
            blended = _blend_over(
                np.concatenate([entry[2] for entry in deferred]),
                np.concatenate([entry[3] for entry in deferred]),
            )
            offset = 0
            for out_rgba, destinations, _, _ in deferred:
                count = len(destinations)
                out_rgba[destinations] = blended[offset : offset + count]
                offset += count
    resolved = {
        group_id: (pixels, rgba, np.zeros(len(pixels)))
        for group_id, (pixels, rgba) in state.items()
    }
    return resolved, merge_ops


def merge_groups(
    groups: list[tuple[int, list[tuple[int, np.ndarray, np.ndarray, np.ndarray | None]]]],
    num_pixels: int,
    mode: str,
) -> tuple[dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]], int]:
    """Resolve every merge group of one compositing round.

    ``groups`` holds ``(group_id, fragment_sets)`` pairs where each fragment
    set is ``(key, pixels, rgba, depth)`` with pixel-sorted members
    (``depth`` may be ``None`` in ``"over"`` mode).  Narrow groups (at most
    :data:`PAIRWISE_FOLD_MAX_SETS` sets) fold in ascending key order through
    :func:`merge_sorted_pair`; wider groups (direct-send) are offset into
    disjoint pixel bands and resolved in one :func:`merge_fragments` bag.

    Returns ``({group_id: (pixels, rgba, depth)}, merge_ops)``.
    """
    widest = max((len(fragment_sets) for _, fragment_sets in groups), default=0)
    merge_ops = 0
    if widest <= PAIRWISE_FOLD_MAX_SETS:
        if mode == "over":
            return _fold_groups_over(groups, widest)
        resolved: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        for group_id, fragment_sets in groups:
            ordered = sorted(fragment_sets, key=lambda item: item[0])
            key, pixels, rgba, depth = ordered[0]
            acc = (pixels, rgba, depth, np.full(len(pixels), key, dtype=np.int64))
            for key, pixels, rgba, depth in ordered[1:]:
                piece = (pixels, rgba, depth, np.full(len(pixels), key, dtype=np.int64))
                acc, folded = merge_sorted_pair(acc, piece, mode)
                merge_ops += folded
            resolved[group_id] = (acc[0], acc[1], acc[2])
        return resolved, merge_ops

    all_pixels: list[np.ndarray] = []
    all_rgba: list[np.ndarray] = []
    all_depth: list[np.ndarray] = []
    with_depth = mode == "depth"
    for group_id, fragment_sets in groups:
        base = group_id * num_pixels
        # Ascending key order lets merge_fragments use fragment position as
        # the implicit visibility key (no per-set key arrays needed).
        for key, pixels, rgba, depth in sorted(fragment_sets, key=lambda item: item[0]):
            if len(pixels) == 0:
                continue
            all_pixels.append(pixels + base)
            all_rgba.append(rgba)
            if with_depth:
                all_depth.append(depth)
    if not all_pixels:
        empty = (np.empty(0, dtype=np.int64), np.empty((0, 4)), np.empty(0))
        return {group_id: empty for group_id, _ in groups}, 0

    merged_pixels, merged_rgba, merged_depth, merge_ops = merge_fragments(
        np.concatenate(all_pixels),
        None,
        np.concatenate(all_rgba),
        np.concatenate(all_depth) if with_depth else None,
        mode,
    )
    bases = np.array([group_id for group_id, _ in groups], dtype=np.int64) * num_pixels
    lows = np.searchsorted(merged_pixels, bases)
    highs = np.searchsorted(merged_pixels, bases + num_pixels)
    resolved = {}
    for index, (group_id, _) in enumerate(groups):
        lo, hi = int(lows[index]), int(highs[index])
        resolved[group_id] = (
            merged_pixels[lo:hi] - group_id * num_pixels,
            merged_rgba[lo:hi],
            merged_depth[lo:hi],
        )
    return resolved, merge_ops
