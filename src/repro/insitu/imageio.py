"""Dependency-free image writers (PPM / PGM).

Strawman saves its renders as PNG files and can stream them to a browser; the
reproduction writes binary PPM (color) and PGM (grayscale) files instead,
which every image viewer and test harness can read without third-party
libraries.
"""

from __future__ import annotations

import os

import numpy as np

from repro.rendering.framebuffer import Framebuffer

__all__ = ["write_ppm", "write_pgm", "read_ppm"]


def write_ppm(path: str | os.PathLike, image: Framebuffer | np.ndarray) -> str:
    """Write an RGB image as binary PPM (P6).

    ``image`` may be a :class:`Framebuffer` (converted with
    :meth:`~repro.rendering.framebuffer.Framebuffer.to_rgb8`) or an
    ``(h, w, 3)`` uint8 array.  Returns the path written.
    """
    if isinstance(image, Framebuffer):
        pixels = image.to_rgb8()
    else:
        pixels = np.asarray(image)
        if pixels.dtype != np.uint8 or pixels.ndim != 3 or pixels.shape[2] != 3:
            raise ValueError("expected an (h, w, 3) uint8 array or a Framebuffer")
    height, width, _ = pixels.shape
    path = os.fspath(path)
    with open(path, "wb") as stream:
        stream.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        stream.write(pixels.tobytes())
    return path


def write_pgm(path: str | os.PathLike, values: np.ndarray) -> str:
    """Write a 2D float or uint8 array as binary PGM (P5), normalizing floats."""
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError("expected a 2D array")
    if values.dtype != np.uint8:
        finite = np.where(np.isfinite(values), values, 0.0)
        low, high = float(finite.min()), float(finite.max())
        scale = 255.0 / (high - low) if high > low else 0.0
        values = np.clip((finite - low) * scale, 0, 255).astype(np.uint8)
    height, width = values.shape
    path = os.fspath(path)
    with open(path, "wb") as stream:
        stream.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        stream.write(values.tobytes())
    return path


def read_ppm(path: str | os.PathLike) -> np.ndarray:
    """Read back a binary PPM written by :func:`write_ppm` (used by tests)."""
    with open(os.fspath(path), "rb") as stream:
        magic = stream.readline().strip()
        if magic != b"P6":
            raise ValueError("not a binary PPM file")
        dims = stream.readline().split()
        width, height = int(dims[0]), int(dims[1])
        maxval = int(stream.readline())
        if maxval != 255:
            raise ValueError("only 8-bit PPM files are supported")
        data = stream.read(width * height * 3)
    return np.frombuffer(data, dtype=np.uint8).reshape(height, width, 3)
