"""In situ visualization infrastructure (the Strawman / Conduit analogue, Chapter IV).

The infrastructure couples simulations to the rendering layer through three
pieces, mirroring the paper's design:

* :mod:`repro.insitu.conduit` -- a hierarchical, path-addressed node tree used
  to describe mesh data and visualization actions (the Conduit analogue,
  including zero-copy ``set_external`` semantics).
* :mod:`repro.insitu.blueprint` -- the mesh-description conventions: how a
  uniform / rectilinear / unstructured mesh and its fields are laid out in a
  node tree, plus validation and conversion to :mod:`repro.geometry` meshes.
* :mod:`repro.insitu.strawman` -- the batch in situ interface itself:
  ``Open`` / ``Publish`` / ``Execute`` / ``Close``, an action vocabulary
  (AddPlot / DrawPlots / SaveImage), per-rank rendering with the renderers of
  :mod:`repro.rendering`, and sort-last compositing with
  :mod:`repro.compositing` when run over a simulated communicator.
* :mod:`repro.insitu.imageio` -- PPM/PGM image writers (dependency-free) for
  saving rendered results, standing in for the paper's PNG output + web
  streaming.
"""

from repro.insitu.conduit import ConduitNode
from repro.insitu.blueprint import mesh_to_node, node_to_mesh, validate_mesh_node
from repro.insitu.strawman import Strawman, StrawmanOptions
from repro.insitu.imageio import write_ppm, write_pgm

__all__ = [
    "ConduitNode",
    "Strawman",
    "StrawmanOptions",
    "mesh_to_node",
    "node_to_mesh",
    "validate_mesh_node",
    "write_pgm",
    "write_ppm",
]
