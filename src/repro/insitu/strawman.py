"""The batch in situ interface: Open / Publish / Execute / Close (Chapter IV).

:class:`Strawman` is the reproduction of the paper's light-weight in situ
mini-app.  A simulation (or each simulated MPI rank of one) describes its mesh
with the blueprint conventions, publishes the description, and hands Strawman
a list of actions; Strawman converts the descriptions to concrete meshes,
renders each rank's data with the requested renderer, composites the per-rank
images sort-last, and saves or returns the final image.

The action vocabulary mirrors the paper's example listings::

    actions = ConduitNode()
    add = actions.append()
    add["action"] = "AddPlot"
    add["var"] = "e"
    add["renderer"] = "raytrace"          # raytrace | raster | volume
    draw = actions.append()
    draw["action"] = "DrawPlots"
    save = actions.append()
    save["action"] = "SaveImage"
    save["fileName"] = "image0001"
    save["width"] = 256
    save["height"] = 256
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.compositing import CompositeResult, Compositor
from repro.geometry.aabb import AABB, aabb_union
from repro.geometry.mesh import (
    Mesh,
    RectilinearGrid,
    UniformGrid,
    UnstructuredHexMesh,
    UnstructuredTetMesh,
)
from repro.geometry.tetra import hex_to_tets
from repro.geometry.transforms import Camera
from repro.geometry.triangles import external_faces
from repro.insitu.blueprint import node_to_mesh, validate_mesh_node
from repro.insitu.conduit import ConduitNode
from repro.insitu.imageio import write_ppm
from repro.rendering import (
    Rasterizer,
    RayTracer,
    RayTracerConfig,
    Renderer,
    RenderResult,
    Scene,
    StructuredVolumeRenderer,
    UnstructuredVolumeRenderer,
    Workload,
)
from repro.rendering.framebuffer import Framebuffer
from repro.util.timing import Timer

__all__ = ["StrawmanOptions", "Strawman"]

_SURFACE_RENDERERS = ("raytrace", "raster")
_ALL_RENDERERS = ("raytrace", "raster", "volume")


@dataclass
class StrawmanOptions:
    """Options passed to :meth:`Strawman.open`.

    Attributes
    ----------
    num_ranks:
        Number of simulated MPI ranks that will publish data.
    output_directory:
        Where ``SaveImage`` actions write their PPM files.
    compositing_algorithm:
        ``"radix-k"`` (default), ``"binary-swap"``, or ``"direct-send"``.
    default_width / default_height:
        Image size when an action does not specify one.
    """

    num_ranks: int = 1
    output_directory: str = "."
    compositing_algorithm: str = "radix-k"
    default_width: int = 256
    default_height: int = 256


@dataclass
class _Plot:
    """One AddPlot action."""

    variable: str
    renderer: str = "raytrace"
    isovalue: float | None = None


@dataclass
class ExecutionRecord:
    """Timing and output of one Execute call (one visualization cycle)."""

    render_seconds: float
    composite_seconds: float
    results: list[RenderResult] = field(default_factory=list)
    composites: list[CompositeResult] = field(default_factory=list)
    framebuffer: Framebuffer | None = None
    saved_files: list[str] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.render_seconds + self.composite_seconds

    @property
    def bytes_exchanged(self) -> float:
        """Total simulated compositing traffic of the cycle (run-length wire bytes)."""
        return float(sum(composite.bytes_exchanged for composite in self.composites))

    @property
    def average_active_pixels(self) -> float:
        """Mean ``avg(AP)`` (Eq. 5.5) over the cycle's composites."""
        if not self.composites:
            return 0.0
        return float(np.mean([composite.average_active_pixels for composite in self.composites]))


class Strawman:
    """The in situ visualization mini-app."""

    def __init__(self) -> None:
        self._options: StrawmanOptions | None = None
        self._published: dict[int, ConduitNode] = {}
        self.history: list[ExecutionRecord] = []

    # -- lifecycle -------------------------------------------------------------------
    def open(self, options: StrawmanOptions | dict | None = None) -> None:
        """Initialize the interface (R2: batch usage, no user in the loop)."""
        if isinstance(options, dict):
            options = StrawmanOptions(**options)
        self._options = options or StrawmanOptions()
        if self._options.num_ranks < 1:
            raise ValueError("num_ranks must be positive")
        self._published.clear()
        self.history.clear()

    def close(self) -> None:
        """Release published data."""
        self._published.clear()
        self._options = None

    # -- data publication ---------------------------------------------------------------
    def publish(self, data: ConduitNode, rank: int = 0) -> None:
        """Publish one rank's mesh description (validated immediately)."""
        if self._options is None:
            raise RuntimeError("Strawman.open() must be called before publish()")
        if not 0 <= rank < self._options.num_ranks:
            raise IndexError(f"rank {rank} out of range for {self._options.num_ranks} ranks")
        problems = validate_mesh_node(data)
        if problems:
            raise ValueError("published data does not conform to the mesh blueprint: " + "; ".join(problems))
        self._published[rank] = data

    # -- execution ------------------------------------------------------------------------
    def execute(self, actions: ConduitNode) -> ExecutionRecord:
        """Run a list of actions against the currently published data."""
        if self._options is None:
            raise RuntimeError("Strawman.open() must be called before execute()")
        if len(self._published) != self._options.num_ranks:
            missing = self._options.num_ranks - len(self._published)
            raise RuntimeError(f"{missing} rank(s) have not published data yet")

        plots: list[_Plot] = []
        record = ExecutionRecord(render_seconds=0.0, composite_seconds=0.0)
        pending_draw = False
        width = self._options.default_width
        height = self._options.default_height

        for _, action_node in actions.children():
            action = action_node["action"]
            if action == "AddPlot":
                plots.append(
                    _Plot(
                        variable=action_node["var"],
                        renderer=action_node["renderer"] if "renderer" in action_node else "raytrace",
                        isovalue=action_node["isovalue"] if "isovalue" in action_node else None,
                    )
                )
            elif action == "DrawPlots":
                pending_draw = True
            elif action == "SaveImage":
                if "width" in action_node:
                    width = int(action_node["width"])
                if "height" in action_node:
                    height = int(action_node["height"])
                if pending_draw:
                    self._draw(plots, width, height, record)
                    pending_draw = False
                file_name = action_node["fileName"]
                record.saved_files.append(self._save(record, file_name))
            else:
                raise ValueError(f"unknown action {action!r}")

        if pending_draw:
            self._draw(plots, width, height, record)
        self.history.append(record)
        return record

    # -- internals ----------------------------------------------------------------------------
    def _meshes(self) -> dict[int, Mesh]:
        return {rank: node_to_mesh(node) for rank, node in sorted(self._published.items())}

    def _global_bounds(self, meshes: dict[int, Mesh]) -> AABB:
        return aabb_union([mesh.bounds for mesh in meshes.values()])

    def _draw(self, plots: list[_Plot], width: int, height: int, record: ExecutionRecord) -> None:
        """Render every plot over all ranks and composite the results."""
        if not plots:
            raise ValueError("DrawPlots requested but no AddPlot action was given")
        meshes = self._meshes()
        bounds = self._global_bounds(meshes)
        camera = Camera.framing_bounds(bounds, width, height)
        compositor = Compositor(self._options.compositing_algorithm)

        final: Framebuffer | None = None
        for plot in plots:
            if plot.renderer not in _ALL_RENDERERS:
                raise ValueError(f"unknown renderer {plot.renderer!r}; choose from {_ALL_RENDERERS}")
            framebuffers: list[Framebuffer] = []
            visibility: list[float] = []
            with Timer() as render_timer:
                for rank, mesh in meshes.items():
                    renderer = self._make_renderer(mesh, plot)
                    result = renderer.render(camera)
                    record.results.append(result)
                    framebuffers.append(result.framebuffer)
                    visibility.append(renderer.visibility_depth(camera))
            record.render_seconds += render_timer.elapsed

            with Timer() as composite_timer:
                if plot.renderer in _SURFACE_RENDERERS:
                    composite = compositor.composite(framebuffers, mode="depth")
                else:
                    composite = compositor.composite(framebuffers, mode="over", visibility_order=visibility)
            record.composite_seconds += composite_timer.elapsed
            record.composites.append(composite)
            layer = composite.framebuffer
            final = layer if final is None else layer.depth_composite(final)
        record.framebuffer = final

    def _make_renderer(self, mesh: Mesh, plot: _Plot) -> Renderer:
        """Build the :class:`~repro.rendering.Renderer` for one rank's mesh.

        Every renderer family satisfies the same protocol, so the draw loop
        renders and orders sub-images without per-family branches.
        """
        if plot.renderer in _SURFACE_RENDERERS:
            surface = external_faces(self._as_hex_mesh(mesh), scalar_field=plot.variable)
            scene = Scene(surface)
            if plot.renderer == "raytrace":
                return RayTracer(scene, RayTracerConfig(workload=Workload.SHADING))
            return Rasterizer(scene)

        # Volume rendering: structured grids use the structured ray caster,
        # everything else goes through hex -> tet decomposition.
        field_name, values = mesh.field(plot.variable)
        if isinstance(mesh, UniformGrid) and field_name == "point":
            return StructuredVolumeRenderer(mesh, plot.variable)
        if isinstance(mesh, RectilinearGrid) and field_name == "point":
            return StructuredVolumeRenderer(mesh.to_uniform_resampled(), plot.variable)
        hex_mesh = self._as_hex_mesh(mesh)
        point_values = self._point_values(hex_mesh, plot.variable)
        hex_mesh.add_point_field(plot.variable + "_point", point_values)
        tets = hex_to_tets(hex_mesh)
        return UnstructuredVolumeRenderer(tets, plot.variable + "_point")

    @staticmethod
    def _as_hex_mesh(mesh: Mesh) -> UnstructuredHexMesh:
        if isinstance(mesh, UnstructuredHexMesh):
            return mesh
        if isinstance(mesh, (UniformGrid, RectilinearGrid)):
            return UnstructuredHexMesh.from_structured(mesh)
        if isinstance(mesh, UnstructuredTetMesh):
            raise TypeError("surface extraction from tet meshes is not supported by Strawman")
        raise TypeError(f"unsupported mesh type {type(mesh).__name__}")

    @staticmethod
    def _point_values(mesh: UnstructuredHexMesh, variable: str) -> np.ndarray:
        """Point-centered copy of a field (averaging cell data when needed)."""
        association, values = mesh.field(variable)
        if association == "point":
            return np.asarray(values, dtype=np.float64)
        sums = np.zeros(mesh.num_points)
        counts = np.zeros(mesh.num_points)
        for corner in range(8):
            np.add.at(sums, mesh.connectivity[:, corner], np.asarray(values, dtype=np.float64))
            np.add.at(counts, mesh.connectivity[:, corner], 1.0)
        counts[counts == 0.0] = 1.0
        return sums / counts

    def _save(self, record: ExecutionRecord, file_name: str) -> str:
        """Write the most recent framebuffer as a PPM file."""
        if record.framebuffer is None:
            raise RuntimeError("SaveImage requested before any DrawPlots produced an image")
        os.makedirs(self._options.output_directory, exist_ok=True)
        if not file_name.endswith(".ppm"):
            file_name = file_name + ".ppm"
        return write_ppm(os.path.join(self._options.output_directory, file_name), record.framebuffer)
