"""Mesh-description conventions over the Conduit-like node tree.

Strawman "is not creating a new mesh data model.  Instead we provide a set of
conventions to describe mesh data" (Chapter IV).  This module defines those
conventions for the reproduction and converts between them and the concrete
:mod:`repro.geometry` mesh classes:

``coords``
    * uniform:      ``coords/type = "uniform"`` with ``dims``, ``origin``, ``spacing``
    * rectilinear:  ``coords/type = "rectilinear"`` with ``values/x|y|z``
    * explicit:     ``coords/type = "explicit"`` with ``values/x|y|z`` arrays

``topology``
    * structured grids: ``topology/type = "structured"`` (implicit connectivity)
    * unstructured:     ``topology/type = "unstructured"`` with
      ``elements/shape`` (``"hexs"`` or ``"tets"``) and ``elements/connectivity``

``fields``
    ``fields/<name>/association`` (``"vertex"`` or ``"element"``),
    ``fields/<name>/values``.

:func:`validate_mesh_node` checks conformance and raises descriptive errors;
:func:`node_to_mesh` builds the corresponding geometry object (zero-copy where
the arrays allow it).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mesh import (
    Mesh,
    RectilinearGrid,
    UniformGrid,
    UnstructuredHexMesh,
    UnstructuredTetMesh,
)
from repro.insitu.conduit import ConduitNode

__all__ = ["mesh_to_node", "node_to_mesh", "validate_mesh_node"]


def mesh_to_node(mesh: Mesh, zero_copy: bool = True) -> ConduitNode:
    """Describe a geometry mesh with the blueprint conventions.

    ``zero_copy`` publishes field arrays with ``set_external`` (the simulation
    retains ownership), which is requirement R11 of the paper.
    """
    node = ConduitNode()
    setter = (lambda target, values: target.set_external(values)) if zero_copy else (
        lambda target, values: target.set(values)
    )

    if isinstance(mesh, UniformGrid):
        node["coords/type"] = "uniform"
        node["coords/dims"] = np.asarray(mesh.dims, dtype=np.int64)
        node["coords/origin"] = np.asarray(mesh.origin, dtype=np.float64)
        node["coords/spacing"] = np.asarray(mesh.spacing, dtype=np.float64)
        node["topology/type"] = "structured"
    elif isinstance(mesh, RectilinearGrid):
        node["coords/type"] = "rectilinear"
        setter(node.fetch("coords/values/x"), mesh.x)
        setter(node.fetch("coords/values/y"), mesh.y)
        setter(node.fetch("coords/values/z"), mesh.z)
        node["topology/type"] = "structured"
    elif isinstance(mesh, (UnstructuredHexMesh, UnstructuredTetMesh)):
        points = mesh.points()
        node["coords/type"] = "explicit"
        setter(node.fetch("coords/values/x"), points[:, 0])
        setter(node.fetch("coords/values/y"), points[:, 1])
        setter(node.fetch("coords/values/z"), points[:, 2])
        node["topology/type"] = "unstructured"
        node["topology/elements/shape"] = "hexs" if isinstance(mesh, UnstructuredHexMesh) else "tets"
        setter(node.fetch("topology/elements/connectivity"), mesh.connectivity)
    else:
        raise TypeError(f"unsupported mesh type {type(mesh).__name__}")

    for name, values in mesh.point_fields.items():
        node[f"fields/{name}/association"] = "vertex"
        setter(node.fetch(f"fields/{name}/values"), np.asarray(values))
    for name, values in mesh.cell_fields.items():
        node[f"fields/{name}/association"] = "element"
        setter(node.fetch(f"fields/{name}/values"), np.asarray(values))
    return node


def validate_mesh_node(node: ConduitNode) -> list[str]:
    """Validate blueprint conformance; returns a list of problems (empty when valid)."""
    problems: list[str] = []
    if "coords/type" not in node:
        return ["missing coords/type"]
    coords_type = node["coords/type"]
    if coords_type == "uniform":
        for key in ("coords/dims", "coords/origin", "coords/spacing"):
            if key not in node:
                problems.append(f"missing {key}")
    elif coords_type in ("rectilinear", "explicit"):
        for axis in "xyz":
            if f"coords/values/{axis}" not in node:
                problems.append(f"missing coords/values/{axis}")
    else:
        problems.append(f"unknown coords/type {coords_type!r}")

    if "topology/type" not in node:
        problems.append("missing topology/type")
    else:
        topo_type = node["topology/type"]
        if topo_type == "unstructured":
            if "topology/elements/shape" not in node:
                problems.append("missing topology/elements/shape")
            elif node["topology/elements/shape"] not in ("hexs", "tets"):
                problems.append(f"unsupported element shape {node['topology/elements/shape']!r}")
            if "topology/elements/connectivity" not in node:
                problems.append("missing topology/elements/connectivity")
        elif topo_type != "structured":
            problems.append(f"unknown topology/type {topo_type!r}")

    if "fields" in node:
        fields_node = node.fetch_existing("fields")
        for name, field_node in fields_node.children():
            if not field_node.has_path("values"):
                problems.append(f"field {name!r} missing values")
            if not field_node.has_path("association"):
                problems.append(f"field {name!r} missing association")
            elif field_node.fetch_existing("association").value() not in ("vertex", "element"):
                problems.append(f"field {name!r} has unknown association")
    return problems


def node_to_mesh(node: ConduitNode) -> Mesh:
    """Reconstruct a geometry mesh from a blueprint-conforming node tree."""
    problems = validate_mesh_node(node)
    if problems:
        raise ValueError("invalid mesh description: " + "; ".join(problems))

    coords_type = node["coords/type"]
    if coords_type == "uniform":
        dims = tuple(int(d) for d in np.asarray(node["coords/dims"]))
        origin = tuple(float(v) for v in np.asarray(node["coords/origin"]))
        spacing = tuple(float(v) for v in np.asarray(node["coords/spacing"]))
        mesh: Mesh = UniformGrid(dims, origin=origin, spacing=spacing)
    elif coords_type == "rectilinear":
        mesh = RectilinearGrid(
            np.asarray(node["coords/values/x"]),
            np.asarray(node["coords/values/y"]),
            np.asarray(node["coords/values/z"]),
        )
    else:  # explicit coordinates -> unstructured
        points = np.column_stack(
            [
                np.asarray(node["coords/values/x"], dtype=np.float64),
                np.asarray(node["coords/values/y"], dtype=np.float64),
                np.asarray(node["coords/values/z"], dtype=np.float64),
            ]
        )
        shape = node["topology/elements/shape"]
        connectivity = np.asarray(node["topology/elements/connectivity"], dtype=np.int64)
        if shape == "hexs":
            mesh = UnstructuredHexMesh(points, connectivity)
        else:
            mesh = UnstructuredTetMesh(points, connectivity)

    if "fields" in node:
        for name, field_node in node.fetch_existing("fields").children():
            values = np.asarray(field_node.fetch_existing("values").value())
            association = field_node.fetch_existing("association").value()
            if association == "vertex":
                mesh.add_point_field(name, values)
            else:
                mesh.add_cell_field(name, values)
    return mesh
