"""Hierarchical node tree for in-core data description (the Conduit analogue).

Conduit (Chapter IV) provides a JSON-like hierarchical object model whose
distinguishing features the reproduction preserves:

* **path-addressed access** -- ``node["fields/e/values"]`` creates the
  intermediate objects on demand exactly as Conduit's ``Node`` does;
* **separation of description from data** -- large numeric arrays are stored
  by reference (zero-copy) via :meth:`ConduitNode.set_external`, so
  publishing simulation state does not duplicate it; and
* **runtime introspection** -- children can be listed, paths tested, and the
  tree rendered to a nested dictionary or a YAML-ish string for debugging.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

__all__ = ["ConduitNode"]


class ConduitNode:
    """A node in the hierarchical description tree.

    A node is either an *object node* (holding named children) or a *leaf*
    (holding a value).  Assigning through a path creates intermediate object
    nodes automatically.
    """

    def __init__(self) -> None:
        self._children: dict[str, "ConduitNode"] = {}
        self._value: Any = None
        self._has_value = False
        self._external = False

    # -- path handling ---------------------------------------------------------------
    @staticmethod
    def _split(path: str) -> list[str]:
        parts = [part for part in path.split("/") if part]
        if not parts:
            raise KeyError("empty path")
        return parts

    def fetch(self, path: str) -> "ConduitNode":
        """Return (creating as needed) the node at ``path``."""
        node = self
        for part in self._split(path):
            if node._has_value:
                raise ValueError(f"cannot descend into leaf node at {part!r}")
            if part not in node._children:
                node._children[part] = ConduitNode()
            node = node._children[part]
        return node

    def fetch_existing(self, path: str) -> "ConduitNode":
        """Return the node at ``path`` or raise ``KeyError`` if any part is missing."""
        node = self
        for part in self._split(path):
            if part not in node._children:
                raise KeyError(f"path {path!r} does not exist (missing {part!r})")
            node = node._children[part]
        return node

    def has_path(self, path: str) -> bool:
        """True when every component of ``path`` exists."""
        try:
            self.fetch_existing(path)
            return True
        except KeyError:
            return False

    # -- value access ------------------------------------------------------------------
    def set(self, value: Any) -> None:
        """Store a (copied, for numpy arrays) value in this node."""
        if self._children:
            raise ValueError("cannot set a value on an object node with children")
        if isinstance(value, np.ndarray):
            value = value.copy()
        self._value = value
        self._has_value = True
        self._external = False

    def set_external(self, value: Any) -> None:
        """Store a value by reference (zero-copy): the caller retains ownership."""
        if self._children:
            raise ValueError("cannot set a value on an object node with children")
        self._value = value
        self._has_value = True
        self._external = True

    def value(self) -> Any:
        """The stored value (raises if this is an object node)."""
        if not self._has_value:
            raise ValueError("node has no value (object node or empty leaf)")
        return self._value

    @property
    def is_external(self) -> bool:
        """True when the value is held zero-copy."""
        return self._external

    @property
    def is_leaf(self) -> bool:
        return self._has_value

    # -- dict-like conveniences -------------------------------------------------------------
    def __setitem__(self, path: str, value: Any) -> None:
        self.fetch(path).set(value)

    def __getitem__(self, path: str) -> Any:
        node = self.fetch_existing(path)
        return node.value() if node.is_leaf else node

    def __contains__(self, path: str) -> bool:
        return self.has_path(path)

    def child_names(self) -> list[str]:
        """Names of direct children (empty for leaves)."""
        return list(self._children)

    def children(self) -> Iterator[tuple[str, "ConduitNode"]]:
        """Iterate over (name, child) pairs."""
        return iter(self._children.items())

    # -- structural helpers ----------------------------------------------------------------------
    def append(self) -> "ConduitNode":
        """Append an anonymous child (used for action lists, as in Conduit)."""
        name = str(len(self._children))
        child = ConduitNode()
        self._children[name] = child
        return child

    def to_dict(self) -> Any:
        """Nested-dictionary rendering (leaves become their values)."""
        if self.is_leaf:
            return self._value
        return {name: child.to_dict() for name, child in self._children.items()}

    def total_bytes(self) -> int:
        """Sum of the buffer sizes of all numpy leaves (zero-copy or not)."""
        if self.is_leaf:
            return int(self._value.nbytes) if isinstance(self._value, np.ndarray) else 0
        return sum(child.total_bytes() for child in self._children.values())

    def to_yaml(self, indent: int = 0) -> str:
        """Small YAML-ish rendering for debugging and documentation examples."""
        pad = "  " * indent
        if self.is_leaf:
            value = self._value
            if isinstance(value, np.ndarray):
                return f"[array shape={value.shape} dtype={value.dtype}]"
            return repr(value)
        lines = []
        for name, child in self._children.items():
            if child.is_leaf:
                lines.append(f"{pad}{name}: {child.to_yaml()}")
            else:
                lines.append(f"{pad}{name}:")
                lines.append(child.to_yaml(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else f"object({len(self._children)})"
        return f"ConduitNode<{kind}>"
