"""Vectorized helpers for expanding variable-length segments.

The object-order renderers expand each primitive into a variable number of
candidate samples (its pixel footprint).  Doing that expansion with Python
loops is prohibitively slow, so these helpers build the per-segment local
indices and the memory-bounded chunk boundaries entirely with numpy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["segment_local_indices", "chunk_ranges"]


def segment_local_indices(counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(counts[i])`` for every segment ``i``.

    Example: ``counts = [3, 0, 2]`` yields ``[0, 1, 2, 0, 1]``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1:
        raise ValueError("counts must be one-dimensional")
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def chunk_ranges(counts: np.ndarray, max_total: int) -> list[tuple[int, int]]:
    """Split segments into consecutive chunks whose summed counts stay bounded.

    Returns ``(start, end)`` index ranges into ``counts`` such that the sum of
    each chunk is at most ``max_total`` -- except that a single segment larger
    than the bound forms a chunk by itself (it cannot be split).

    The number of returned chunks is small, so iterating over them in Python
    is cheap even when ``counts`` has millions of entries.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if max_total < 1:
        raise ValueError("max_total must be positive")
    n = len(counts)
    if n == 0:
        return []
    cumulative = np.cumsum(counts)
    ranges: list[tuple[int, int]] = []
    start = 0
    while start < n:
        base = cumulative[start - 1] if start > 0 else 0
        end = int(np.searchsorted(cumulative, base + max_total, side="right"))
        end = max(end, start + 1)
        ranges.append((start, end))
        start = end
    return ranges
