"""Shared utilities for the in situ rendering performance-modeling reproduction.

This package holds small building blocks used throughout :mod:`repro`:

* :mod:`repro.util.morton` -- Z-order (Morton) curve encoding used to order
  camera rays and to build the linear BVH (LBVH).
* :mod:`repro.util.timing` -- lightweight wall-clock timers and a hierarchical
  timing registry used by the data-gathering infrastructure.
* :mod:`repro.util.rng` -- deterministic random-number-generator helpers so
  every experiment in the study is reproducible.
"""

from repro.util.morton import (
    morton_decode_2d,
    morton_decode_3d,
    morton_encode_2d,
    morton_encode_3d,
    morton_order_points,
    part1by1,
    part1by2,
    unpart1by1,
    unpart1by2,
)
from repro.util.rng import default_rng, derive_seed, spawn_rngs
from repro.util.timing import Timer, TimingRegistry, format_seconds

__all__ = [
    "Timer",
    "TimingRegistry",
    "default_rng",
    "derive_seed",
    "format_seconds",
    "morton_decode_2d",
    "morton_decode_3d",
    "morton_encode_2d",
    "morton_encode_3d",
    "morton_order_points",
    "part1by1",
    "part1by2",
    "spawn_rngs",
    "unpart1by1",
    "unpart1by2",
]
