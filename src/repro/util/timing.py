"""Wall-clock timers and a hierarchical timing registry.

The performance study (Chapter V) gathers per-phase run times for every
rendering experiment; Chapter VI motivates a generic "data gathering
infrastructure" that records hierarchical timings with low overhead.  The
:class:`TimingRegistry` here is that infrastructure: renderers register
phase timings under dotted names (``"raytrace.bvh_build"``,
``"volume.sampling"``) and the study harness later retrieves them to build
the regression corpus.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Timer", "TimingRegistry", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Render a duration with units matched to its magnitude."""
    if seconds < 0:
        return f"-{format_seconds(-seconds)}"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.3f} s"
    return f"{seconds / 60.0:.2f} min"


@dataclass
class Timer:
    """Context-manager stopwatch.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        """Begin (or restart) timing."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop timing, accumulate into :attr:`elapsed`, and return it."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._start = None


@dataclass
class _PhaseRecord:
    """Accumulated statistics for one named phase."""

    total: float = 0.0
    count: int = 0
    minimum: float = float("inf")
    maximum: float = 0.0

    def add(self, seconds: float) -> None:
        self.total += seconds
        self.count += 1
        self.minimum = min(self.minimum, seconds)
        self.maximum = max(self.maximum, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class TimingRegistry:
    """Hierarchical accumulator of named phase timings.

    Phase names are dotted paths; :meth:`subtotal` aggregates over a prefix so
    callers can ask for e.g. the total of every ``"volume.*"`` phase.
    """

    _records: dict[str, _PhaseRecord] = field(default_factory=lambda: defaultdict(_PhaseRecord))

    def record(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` under ``name``."""
        if seconds < 0:
            raise ValueError("negative duration recorded")
        self._records[name].add(seconds)

    def time(self, name: str) -> "_RegistryTimer":
        """Return a context manager that records its elapsed time under ``name``."""
        return _RegistryTimer(self, name)

    def total(self, name: str) -> float:
        """Total accumulated seconds for an exact phase name (0.0 if unseen)."""
        record = self._records.get(name)
        return record.total if record else 0.0

    def count(self, name: str) -> int:
        """Number of samples recorded for an exact phase name."""
        record = self._records.get(name)
        return record.count if record else 0

    def mean(self, name: str) -> float:
        """Mean duration for an exact phase name (0.0 if unseen)."""
        record = self._records.get(name)
        return record.mean if record else 0.0

    def subtotal(self, prefix: str) -> float:
        """Sum of totals over every phase whose name starts with ``prefix``."""
        return sum(rec.total for name, rec in self._records.items() if name.startswith(prefix))

    def phases(self) -> Iterator[str]:
        """Iterate over recorded phase names in insertion order."""
        return iter(self._records.keys())

    def as_dict(self) -> dict[str, float]:
        """Snapshot of phase totals."""
        return {name: rec.total for name, rec in self._records.items()}

    def clear(self) -> None:
        """Forget all recorded phases."""
        self._records.clear()

    def merge(self, other: "TimingRegistry") -> None:
        """Fold another registry's totals into this one."""
        for name, rec in other._records.items():
            mine = self._records[name]
            mine.total += rec.total
            mine.count += rec.count
            mine.minimum = min(mine.minimum, rec.minimum)
            mine.maximum = max(mine.maximum, rec.maximum)

    def report(self) -> str:
        """Human-readable multi-line summary sorted by total time."""
        lines = ["phase                                    total      count   mean"]
        for name, rec in sorted(self._records.items(), key=lambda kv: -kv[1].total):
            lines.append(
                f"{name:<40} {format_seconds(rec.total):>10} {rec.count:>7}"
                f" {format_seconds(rec.mean):>10}"
            )
        return "\n".join(lines)


class _RegistryTimer:
    """Context manager produced by :meth:`TimingRegistry.time`."""

    def __init__(self, registry: TimingRegistry, name: str) -> None:
        self._registry = registry
        self._name = name
        self._timer = Timer()

    def __enter__(self) -> Timer:
        self._timer.start()
        return self._timer

    def __exit__(self, *exc_info: object) -> None:
        self._timer.stop()
        self._registry.record(self._name, self._timer.elapsed)
