"""Morton (Z-order) curve encoding and decoding.

The data-parallel ray tracer orders camera rays along a Morton curve of the
framebuffer to increase memory coherence (Chapter II of the dissertation), and
the linear BVH builder (LBVH, Karras 2012) sorts primitive centroids by their
30-bit 3D Morton code before emitting the hierarchy.  Both uses are served by
the vectorized encoders in this module.

All functions operate element-wise on numpy integer arrays and are fully
vectorized; scalar inputs are accepted and give scalar outputs through normal
numpy broadcasting rules.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "part1by1",
    "part1by2",
    "unpart1by1",
    "unpart1by2",
    "morton_encode_2d",
    "morton_decode_2d",
    "morton_encode_3d",
    "morton_decode_3d",
    "morton_codes_points",
    "morton_order_points",
]

# Maximum number of bits per coordinate supported by the 2D/3D encoders.
MAX_BITS_2D = 16
MAX_BITS_3D = 10


def part1by1(x: np.ndarray) -> np.ndarray:
    """Insert one zero bit between each of the low 16 bits of ``x``.

    This is the classic "bit part" operation used to interleave two
    coordinates into a 2D Morton code.
    """
    x = np.asarray(x, dtype=np.uint32) & np.uint32(0x0000FFFF)
    x = (x | (x << np.uint32(8))) & np.uint32(0x00FF00FF)
    x = (x | (x << np.uint32(4))) & np.uint32(0x0F0F0F0F)
    x = (x | (x << np.uint32(2))) & np.uint32(0x33333333)
    x = (x | (x << np.uint32(1))) & np.uint32(0x55555555)
    return x


def unpart1by1(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`part1by1`: compact every other bit into the low half."""
    x = np.asarray(x, dtype=np.uint32) & np.uint32(0x55555555)
    x = (x | (x >> np.uint32(1))) & np.uint32(0x33333333)
    x = (x | (x >> np.uint32(2))) & np.uint32(0x0F0F0F0F)
    x = (x | (x >> np.uint32(4))) & np.uint32(0x00FF00FF)
    x = (x | (x >> np.uint32(8))) & np.uint32(0x0000FFFF)
    return x


def part1by2(x: np.ndarray) -> np.ndarray:
    """Insert two zero bits between each of the low 10 bits of ``x``.

    Used to interleave three coordinates into a 30-bit 3D Morton code.
    """
    x = np.asarray(x, dtype=np.uint32) & np.uint32(0x000003FF)
    x = (x | (x << np.uint32(16))) & np.uint32(0x030000FF)
    x = (x | (x << np.uint32(8))) & np.uint32(0x0300F00F)
    x = (x | (x << np.uint32(4))) & np.uint32(0x030C30C3)
    x = (x | (x << np.uint32(2))) & np.uint32(0x09249249)
    return x


def unpart1by2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`part1by2`."""
    x = np.asarray(x, dtype=np.uint32) & np.uint32(0x09249249)
    x = (x | (x >> np.uint32(2))) & np.uint32(0x030C30C3)
    x = (x | (x >> np.uint32(4))) & np.uint32(0x0300F00F)
    x = (x | (x >> np.uint32(8))) & np.uint32(0x030000FF)
    x = (x | (x >> np.uint32(16))) & np.uint32(0x000003FF)
    return x


def morton_encode_2d(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Interleave two 16-bit integer coordinates into a 2D Morton code.

    Parameters
    ----------
    x, y:
        Non-negative integer arrays with values below ``2**16``.

    Returns
    -------
    numpy.ndarray
        ``uint32`` Morton codes with ``x`` occupying the even bits.
    """
    return part1by1(x) | (part1by1(y) << np.uint32(1))


def morton_decode_2d(code: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`morton_encode_2d`, returning ``(x, y)``."""
    code = np.asarray(code, dtype=np.uint32)
    return unpart1by1(code), unpart1by1(code >> np.uint32(1))


def morton_encode_3d(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Interleave three 10-bit integer coordinates into a 30-bit Morton code."""
    return (
        part1by2(x)
        | (part1by2(y) << np.uint32(1))
        | (part1by2(z) << np.uint32(2))
    )


def morton_decode_3d(code: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Invert :func:`morton_encode_3d`, returning ``(x, y, z)``."""
    code = np.asarray(code, dtype=np.uint32)
    return (
        unpart1by2(code),
        unpart1by2(code >> np.uint32(1)),
        unpart1by2(code >> np.uint32(2)),
    )


def morton_codes_points(points: np.ndarray, bits: int = MAX_BITS_3D) -> np.ndarray:
    """30-bit Morton codes of 3D ``points`` quantized over their bounding box.

    The point cloud is quantized onto a ``2**bits`` per-axis lattice spanning
    its axis-aligned bounding box; degenerate extents (all points sharing a
    coordinate) quantize to zero along that axis.

    Parameters
    ----------
    points:
        Array of shape ``(n, 3)`` with arbitrary float coordinates.
    bits:
        Bits of quantization per axis, at most :data:`MAX_BITS_3D`.

    Returns
    -------
    numpy.ndarray
        ``uint32`` Morton codes, one per point.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError("points must have shape (n, 3)")
    if not 1 <= bits <= MAX_BITS_3D:
        raise ValueError(f"bits must be in [1, {MAX_BITS_3D}]")
    if points.shape[0] == 0:
        return np.empty(0, dtype=np.uint32)

    lo = points.min(axis=0)
    hi = points.max(axis=0)
    extent = hi - lo
    extent[extent == 0.0] = 1.0
    scale = (2**bits - 1) / extent
    quantized = ((points - lo) * scale).astype(np.uint32)
    return morton_encode_3d(quantized[:, 0], quantized[:, 1], quantized[:, 2])


def morton_order_points(points: np.ndarray, bits: int = MAX_BITS_3D) -> np.ndarray:
    """Return the permutation that sorts 3D ``points`` along a Morton curve.

    See :func:`morton_codes_points` for the quantization; the permutation is
    stable with respect to ties.
    """
    codes = morton_codes_points(points, bits)
    return np.argsort(codes, kind="stable")
