"""Deterministic random-number-generator helpers.

Every stochastic element of the study -- ambient-occlusion sample directions,
stratified sampling of image resolutions and data sizes, and the noise applied
by the synthetic architecture cost model -- draws from numpy ``Generator``
objects created through this module, so reruns of the benchmark harness are
bit-for-bit reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["default_rng", "derive_seed", "spawn_rngs"]

#: Seed used when callers do not supply one; chosen arbitrarily but fixed.
DEFAULT_SEED = 0x5EED_2016


def derive_seed(*labels: object) -> int:
    """Derive a stable 63-bit seed from an arbitrary sequence of labels.

    The labels are rendered with :func:`repr` and hashed with SHA-256, so the
    same labels always yield the same seed regardless of process or platform.
    """
    digest = hashlib.sha256("\x1f".join(repr(label) for label in labels).encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def default_rng(seed: int | None = None, *labels: object) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Base seed; :data:`DEFAULT_SEED` when omitted.
    labels:
        Optional extra labels mixed into the seed via :func:`derive_seed`, so
        different components can share a base seed without sharing streams.
    """
    base = DEFAULT_SEED if seed is None else int(seed)
    if labels:
        base = derive_seed(base, *labels)
    return np.random.default_rng(base)


def spawn_rngs(count: int, seed: int | None = None, *labels: object) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators.

    Used to give each simulated MPI rank its own stream.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = default_rng(seed, *labels)
    return [np.random.default_rng(s) for s in parent.bit_generator.seed_seq.spawn(count)]
