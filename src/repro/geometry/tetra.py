"""Hexahedron-to-tetrahedron decomposition.

The Chapter III study volume-renders unstructured tetrahedral meshes produced
by decomposing hexahedral or rectilinear cells ("This data set was natively on
a rectilinear grid, which we then decomposed into tetrahedrons"; "we divided
these hexahedrons into tetrahedrons").  This module provides that operation:

* :func:`hex_to_tets` splits each hexahedron into five tetrahedra using the
  standard alternating (parity) scheme so that neighbouring cells share
  diagonals and the decomposition is conforming on structured grids.
* :func:`tetrahedralize_uniform_grid` is the convenience wrapper used by the
  data-set generators (Enzo-like and Nek5000-like inputs).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mesh import (
    RectilinearGrid,
    StructuredGrid,
    UniformGrid,
    UnstructuredHexMesh,
    UnstructuredTetMesh,
)

__all__ = ["hex_to_tets", "tetrahedralize_uniform_grid"]

# Five-tet decomposition of a hexahedron with VTK point ordering
# (0..3 bottom counter-clockwise, 4..7 top).  Two mirror-image variants are
# used in a checkerboard pattern so shared faces agree across neighbours.
_FIVE_TETS_EVEN = np.array(
    [
        [0, 1, 2, 5],
        [0, 2, 3, 7],
        [0, 5, 2, 7],
        [0, 5, 7, 4],
        [2, 7, 5, 6],
    ],
    dtype=np.int64,
)
_FIVE_TETS_ODD = np.array(
    [
        [1, 2, 3, 6],
        [1, 3, 0, 4],
        [1, 6, 3, 4],
        [1, 6, 4, 5],
        [3, 4, 6, 7],
    ],
    dtype=np.int64,
)


def hex_to_tets(
    mesh: UnstructuredHexMesh,
    parity: np.ndarray | None = None,
) -> UnstructuredTetMesh:
    """Split every hexahedron into five tetrahedra.

    Parameters
    ----------
    mesh:
        The hexahedral mesh to decompose.  Point fields are carried over
        unchanged; cell fields are replicated onto the five child tets.
    parity:
        Optional boolean array (one per hex) choosing between the two
        mirror-image decompositions.  Structured grids should pass the cell
        ``(i + j + k) % 2`` checkerboard so the decomposition is conforming;
        when omitted, all cells use the "even" variant.

    Returns
    -------
    UnstructuredTetMesh
        Mesh with ``5 * num_cells`` tetrahedra over the same points.
    """
    n_cells = mesh.num_cells
    if parity is None:
        parity = np.zeros(n_cells, dtype=bool)
    parity = np.asarray(parity, dtype=bool)
    if len(parity) != n_cells:
        raise ValueError("parity must have one entry per hexahedron")

    local = np.where(parity[:, None, None], _FIVE_TETS_ODD[None], _FIVE_TETS_EVEN[None])
    # Map local corner ids through each cell's connectivity.
    connectivity = np.take_along_axis(
        mesh.connectivity[:, None, :].repeat(5, axis=1), local, axis=2
    ).reshape(-1, 4)

    tet_mesh = UnstructuredTetMesh(mesh.points(), connectivity)
    for name, values in mesh.point_fields.items():
        tet_mesh.add_point_field(name, np.asarray(values))
    for name, values in mesh.cell_fields.items():
        tet_mesh.add_cell_field(name, np.repeat(np.asarray(values), 5, axis=0))
    return tet_mesh


def _structured_parity(cell_dims: tuple[int, int, int]) -> np.ndarray:
    """Checkerboard parity per cell of a structured grid (x fastest)."""
    cx, cy, cz = cell_dims
    k, j, i = np.meshgrid(np.arange(cz), np.arange(cy), np.arange(cx), indexing="ij")
    return ((i + j + k) % 2 == 1).ravel()


def tetrahedralize_uniform_grid(
    grid: UniformGrid | RectilinearGrid | StructuredGrid,
) -> UnstructuredTetMesh:
    """Decompose any structured grid into a conforming tetrahedral mesh.

    Each hexahedral cell yields five tetrahedra; the checkerboard parity
    pattern guarantees shared faces match between neighbours.  Point and cell
    fields are transferred as in :func:`hex_to_tets`.
    """
    hex_mesh = UnstructuredHexMesh.from_structured(grid)
    parity = _structured_parity(grid.cell_dims)
    return hex_to_tets(hex_mesh, parity)
