"""Hexahedron-to-tetrahedron decomposition.

The Chapter III study volume-renders unstructured tetrahedral meshes produced
by decomposing hexahedral or rectilinear cells ("This data set was natively on
a rectilinear grid, which we then decomposed into tetrahedrons"; "we divided
these hexahedrons into tetrahedrons").  This module provides that operation:

* :func:`hex_to_tets` splits each hexahedron into five tetrahedra using the
  standard alternating (parity) scheme so that neighbouring cells share
  diagonals and the decomposition is conforming on structured grids.
* :func:`tetrahedralize_uniform_grid` is the convenience wrapper used by the
  data-set generators (Enzo-like and Nek5000-like inputs).

The fragment-sorted volume sampler additionally needs per-tet *face* geometry:

* :func:`tet_face_planes` computes the four inward-oriented unit face planes
  (and the opposite-vertex clearances) of every tetrahedron -- the analytic
  entry/exit span of a pixel column through a tet is the intersection of the
  four half-spaces, evaluated per pixel.
* :func:`tet_face_adjacency` pairs faces shared between tets (HAVS-style
  face connectivity), which doubles as a conformity check: a face shared by
  more than two tets is a non-manifold input.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mesh import (
    RectilinearGrid,
    StructuredGrid,
    UniformGrid,
    UnstructuredHexMesh,
    UnstructuredTetMesh,
)

__all__ = [
    "TET_FACES",
    "hex_to_tets",
    "tet_face_adjacency",
    "tet_face_planes",
    "tetrahedralize_uniform_grid",
]

#: The four triangular faces of a tetrahedron; face ``k`` is opposite vertex
#: ``k``, so the barycentric coordinate of vertex ``k`` vanishes on face ``k``.
TET_FACES = np.array([[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]], dtype=np.int64)

# Five-tet decomposition of a hexahedron with VTK point ordering
# (0..3 bottom counter-clockwise, 4..7 top).  Two mirror-image variants are
# used in a checkerboard pattern so shared faces agree across neighbours.
_FIVE_TETS_EVEN = np.array(
    [
        [0, 1, 2, 5],
        [0, 2, 3, 7],
        [0, 5, 2, 7],
        [0, 5, 7, 4],
        [2, 7, 5, 6],
    ],
    dtype=np.int64,
)
_FIVE_TETS_ODD = np.array(
    [
        [1, 2, 3, 6],
        [1, 3, 0, 4],
        [1, 6, 3, 4],
        [1, 6, 4, 5],
        [3, 4, 6, 7],
    ],
    dtype=np.int64,
)


def hex_to_tets(
    mesh: UnstructuredHexMesh,
    parity: np.ndarray | None = None,
) -> UnstructuredTetMesh:
    """Split every hexahedron into five tetrahedra.

    Parameters
    ----------
    mesh:
        The hexahedral mesh to decompose.  Point fields are carried over
        unchanged; cell fields are replicated onto the five child tets.
    parity:
        Optional boolean array (one per hex) choosing between the two
        mirror-image decompositions.  Structured grids should pass the cell
        ``(i + j + k) % 2`` checkerboard so the decomposition is conforming;
        when omitted, all cells use the "even" variant.

    Returns
    -------
    UnstructuredTetMesh
        Mesh with ``5 * num_cells`` tetrahedra over the same points.
    """
    n_cells = mesh.num_cells
    if parity is None:
        parity = np.zeros(n_cells, dtype=bool)
    parity = np.asarray(parity, dtype=bool)
    if len(parity) != n_cells:
        raise ValueError("parity must have one entry per hexahedron")

    local = np.where(parity[:, None, None], _FIVE_TETS_ODD[None], _FIVE_TETS_EVEN[None])
    # Map local corner ids through each cell's connectivity.
    connectivity = np.take_along_axis(
        mesh.connectivity[:, None, :].repeat(5, axis=1), local, axis=2
    ).reshape(-1, 4)

    tet_mesh = UnstructuredTetMesh(mesh.points(), connectivity)
    for name, values in mesh.point_fields.items():
        tet_mesh.add_point_field(name, np.asarray(values))
    for name, values in mesh.cell_fields.items():
        tet_mesh.add_cell_field(name, np.repeat(np.asarray(values), 5, axis=0))
    return tet_mesh


def tet_face_planes(vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inward-oriented unit face planes of each tetrahedron.

    Parameters
    ----------
    vertices:
        ``(num_tets, 4, 3)`` vertex positions (any 3D coordinate system --
        world space or the renderer's ``(px, py, depth-slot)`` screen space).

    Returns
    -------
    planes, heights:
        ``planes`` is ``(num_tets, 4, 4)``; row ``k`` holds ``(a, b, c, d)``
        with unit normal ``(a, b, c)`` oriented so ``a*x + b*y + c*z + d >= 0``
        for points inside the tet.  ``heights`` is ``(num_tets, 4)``: the
        distance from vertex ``k`` to its opposite face ``k`` -- the scale
        that converts a barycentric tolerance into a plane-distance slack.
        Degenerate (flat) tets yield near-zero heights; callers must mask
        them out the same way they mask near-zero barycentric determinants.
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    if vertices.ndim != 3 or vertices.shape[1:] != (4, 3):
        raise ValueError("tet_face_planes expects a (num_tets, 4, 3) vertex array")
    a = vertices[:, TET_FACES[:, 0]]  # (nt, 4, 3)
    b = vertices[:, TET_FACES[:, 1]]
    c = vertices[:, TET_FACES[:, 2]]
    normal = np.cross(b - a, c - a)
    norm = np.linalg.norm(normal, axis=2)
    normal = normal / np.maximum(norm, 1e-300)[..., None]
    offset = -np.einsum("nkj,nkj->nk", normal, a)
    # Signed clearance of the opposite vertex; flip so it is non-negative
    # (the normal then points inward).
    heights = np.einsum("nkj,nkj->nk", normal, vertices) + offset
    sign = np.where(heights < 0.0, -1.0, 1.0)
    planes = np.concatenate([normal * sign[..., None], (offset * sign)[..., None]], axis=2)
    return planes, heights * sign


def tet_face_adjacency(connectivity: np.ndarray) -> np.ndarray:
    """Neighbour tet across each face, ``-1`` on boundary faces.

    Faces are keyed by their sorted vertex triple, so two tets are adjacent
    exactly when they share three vertices -- the conforming-mesh contract the
    parity decomposition of :func:`hex_to_tets` guarantees.  A face shared by
    more than two tets means the input is non-manifold and raises.

    Returns
    -------
    numpy.ndarray
        ``(num_tets, 4)`` int64; entry ``[t, k]`` is the tet sharing face
        ``k`` of tet ``t`` (the face opposite vertex ``k``), or ``-1``.
    """
    connectivity = np.asarray(connectivity, dtype=np.int64)
    if connectivity.ndim != 2 or connectivity.shape[1] != 4:
        raise ValueError("tet_face_adjacency expects a (num_tets, 4) connectivity array")
    num_tets = len(connectivity)
    faces = np.sort(connectivity[:, TET_FACES], axis=2).reshape(-1, 3)
    order = np.lexsort((faces[:, 2], faces[:, 1], faces[:, 0]))
    grouped = faces[order]
    new_run = np.ones(len(grouped), dtype=bool)
    new_run[1:] = np.any(grouped[1:] != grouped[:-1], axis=1)
    run_starts = np.flatnonzero(new_run)
    run_lengths = np.diff(np.append(run_starts, len(grouped)))
    if np.any(run_lengths > 2):
        raise ValueError("non-manifold mesh: a face is shared by more than two tets")
    adjacency = np.full(num_tets * 4, -1, dtype=np.int64)
    owner = order // 4
    paired = run_starts[run_lengths == 2]
    adjacency[order[paired]] = owner[paired + 1]
    adjacency[order[paired + 1]] = owner[paired]
    return adjacency.reshape(num_tets, 4)


def _structured_parity(cell_dims: tuple[int, int, int]) -> np.ndarray:
    """Checkerboard parity per cell of a structured grid (x fastest)."""
    cx, cy, cz = cell_dims
    k, j, i = np.meshgrid(np.arange(cz), np.arange(cy), np.arange(cx), indexing="ij")
    return ((i + j + k) % 2 == 1).ravel()


def tetrahedralize_uniform_grid(
    grid: UniformGrid | RectilinearGrid | StructuredGrid,
) -> UnstructuredTetMesh:
    """Decompose any structured grid into a conforming tetrahedral mesh.

    Each hexahedral cell yields five tetrahedra; the checkerboard parity
    pattern guarantees shared faces match between neighbours.  Point and cell
    fields are transferred as in :func:`hex_to_tets`.
    """
    hex_mesh = UnstructuredHexMesh.from_structured(grid)
    parity = _structured_parity(grid.cell_dims)
    return hex_to_tets(hex_mesh, parity)
