"""Geometry substrate: meshes, bounding boxes, transforms, surface extraction.

The rendering algorithms in the paper operate on two families of data:

* **Structured data** -- uniform and rectilinear grids owned by the proxy
  simulations (Kripke, CloverLeaf3D) and volume-rendered directly.
* **Unstructured data** -- hexahedral meshes (LULESH) turned into triangles
  (external faces, isosurfaces) for ray tracing / rasterization, or into
  tetrahedra for the unstructured volume renderer.

This package provides those mesh types, the axis-aligned bounding-box math
used by the BVH and the rasterizer, the camera / screen-space transforms, the
external-faces and hex-to-tet operations, a marching-tetrahedra isosurface
extractor, and synthetic data-set generators standing in for the paper's
production data (Richtmyer-Meshkov, Enzo, Nek5000, ...).
"""

from repro.geometry.aabb import AABB, aabb_union, triangle_aabbs
from repro.geometry.mesh import (
    RectilinearGrid,
    StructuredGrid,
    UniformGrid,
    UnstructuredHexMesh,
    UnstructuredTetMesh,
)
from repro.geometry.transforms import (
    Camera,
    look_at_matrix,
    perspective_matrix,
    project_points,
    viewport_transform,
)
from repro.geometry.triangles import TriangleMesh, external_faces, quad_to_triangles
from repro.geometry.tetra import (
    hex_to_tets,
    tet_face_adjacency,
    tet_face_planes,
    tetrahedralize_uniform_grid,
)
from repro.geometry.isosurface import isosurface_marching_tets
from repro.geometry.datasets import (
    enzo_like_field,
    make_named_dataset,
    nek5000_like_field,
    richtmyer_meshkov_like_field,
)

__all__ = [
    "AABB",
    "Camera",
    "RectilinearGrid",
    "StructuredGrid",
    "TriangleMesh",
    "UniformGrid",
    "UnstructuredHexMesh",
    "UnstructuredTetMesh",
    "aabb_union",
    "enzo_like_field",
    "external_faces",
    "hex_to_tets",
    "tet_face_adjacency",
    "tet_face_planes",
    "isosurface_marching_tets",
    "look_at_matrix",
    "make_named_dataset",
    "nek5000_like_field",
    "perspective_matrix",
    "project_points",
    "quad_to_triangles",
    "richtmyer_meshkov_like_field",
    "tetrahedralize_uniform_grid",
    "triangle_aabbs",
    "viewport_transform",
]
