"""Axis-aligned bounding boxes (AABBs) and the shared ray/box slab test.

AABBs appear throughout the rendering stack: every BVH node stores one, the
rasterizer bounds each triangle's pixel footprint with one, and the
unstructured volume renderer bounds each tetrahedron's sample footprint with
one (Chapter III, "Sampling" phase).

This module also owns the *one* ray-box interval implementation
(:func:`ray_box_intervals` on top of :func:`safe_reciprocal`) used by every
image-order renderer -- BVH traversal, the structured volume ray caster, and
the connectivity ray-caster baseline previously each carried a private copy,
and the volume copies mapped tiny *negative* direction components to a
*positive* huge reciprocal, corrupting entry/exit intervals for grazing rays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "AABB",
    "aabb_union",
    "triangle_aabbs",
    "points_aabb",
    "safe_reciprocal",
    "ray_box_intervals",
]


@dataclass(frozen=True)
class AABB:
    """An axis-aligned box described by its low and high corners."""

    low: np.ndarray
    high: np.ndarray

    def __post_init__(self) -> None:
        low = np.asarray(self.low, dtype=np.float64)
        high = np.asarray(self.high, dtype=np.float64)
        if low.shape != (3,) or high.shape != (3,):
            raise ValueError("AABB corners must be 3-vectors")
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    @property
    def extent(self) -> np.ndarray:
        """Per-axis lengths (may contain zeros for degenerate boxes)."""
        return self.high - self.low

    @property
    def center(self) -> np.ndarray:
        """Geometric center of the box."""
        return 0.5 * (self.low + self.high)

    @property
    def surface_area(self) -> float:
        """Surface area, used by the SAH BVH builder."""
        dx, dy, dz = np.maximum(self.extent, 0.0)
        return float(2.0 * (dx * dy + dy * dz + dz * dx))

    @property
    def diagonal(self) -> float:
        """Length of the box diagonal."""
        return float(np.linalg.norm(np.maximum(self.extent, 0.0)))

    def is_valid(self) -> bool:
        """True when low <= high on every axis."""
        return bool(np.all(self.low <= self.high))

    def contains_points(self, points: np.ndarray, tol: float = 0.0) -> np.ndarray:
        """Boolean mask of points inside the (tolerance-expanded) box."""
        points = np.asarray(points, dtype=np.float64)
        return np.all((points >= self.low - tol) & (points <= self.high + tol), axis=-1)

    def union(self, other: "AABB") -> "AABB":
        """Smallest box containing both boxes."""
        return AABB(np.minimum(self.low, other.low), np.maximum(self.high, other.high))

    def expanded(self, margin: float) -> "AABB":
        """Box grown by ``margin`` on every side."""
        return AABB(self.low - margin, self.high + margin)


def aabb_union(boxes: list[AABB]) -> AABB:
    """Union of a non-empty list of boxes."""
    if not boxes:
        raise ValueError("aabb_union requires at least one box")
    lows = np.stack([box.low for box in boxes])
    highs = np.stack([box.high for box in boxes])
    return AABB(lows.min(axis=0), highs.max(axis=0))


def points_aabb(points: np.ndarray) -> AABB:
    """Bounding box of a non-empty point cloud of shape ``(n, 3)``."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, 3) array")
    return AABB(points.min(axis=0), points.max(axis=0))


def safe_reciprocal(directions: np.ndarray) -> np.ndarray:
    """Sign-preserving reciprocal with zeros replaced by a huge finite value.

    Tiny components keep their sign (``-1e-301`` maps to a huge *negative*
    reciprocal), so slab tests order their entry/exit planes correctly for
    grazing rays; exact zeros (including ``-0.0``) map to the positive huge
    value, which the min/max folds of the slab test treat correctly because
    the corresponding plane distances become ``+/-inf`` of matching sign.
    The replacement magnitude adapts to the dtype so the reciprocal stays
    finite in ``float32`` throughput mode as well.
    """
    directions = np.asarray(directions)
    tiny = 1e-300 if directions.dtype.itemsize >= 8 else np.float32(1e-30)
    small = np.abs(directions) < tiny
    safe = np.where(
        small,
        np.copysign(tiny, np.where(directions == 0.0, 1.0, directions)),
        directions,
    )
    return 1.0 / safe


def ray_box_intervals(
    origins: np.ndarray,
    directions: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Unclamped slab-test entry/exit parameters of rays against one box.

    ``origins``/``directions`` are ``(n, 3)``; ``low``/``high`` are the box
    corners (3-vectors or broadcastable against the rays).  Returns
    ``(t_near, t_far)``; a ray's parametric interval overlaps the box iff
    ``t_near <= t_far`` (callers clamp ``t_near`` at 0 for rays starting
    inside and require ``t_far > t_near`` for a non-degenerate span).
    """
    origins = np.asarray(origins, dtype=np.float64)
    inv = safe_reciprocal(np.asarray(directions, dtype=np.float64))
    with np.errstate(over="ignore", invalid="ignore"):
        t0 = (np.asarray(low) - origins) * inv
        t1 = (np.asarray(high) - origins) * inv
        t_near = np.minimum(t0, t1).max(axis=-1)
        t_far = np.maximum(t0, t1).min(axis=-1)
    return t_near, t_far


def triangle_aabbs(vertices: np.ndarray, triangles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-triangle bounding boxes.

    Parameters
    ----------
    vertices:
        ``(nv, 3)`` vertex coordinates.
    triangles:
        ``(nt, 3)`` vertex indices.

    Returns
    -------
    (lows, highs):
        Two ``(nt, 3)`` arrays holding each triangle's box corners.
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    triangles = np.asarray(triangles, dtype=np.int64)
    corners = vertices[triangles]  # (nt, 3, 3)
    return corners.min(axis=1), corners.max(axis=1)
