"""Triangle meshes and the external-faces operation.

The surface renderers (ray tracer and rasterizer) consume triangle soups with
a per-vertex scalar used for color-mapping.  The study generates its triangle
workloads with an *external faces* filter: the boundary quadrilaterals of a
hexahedral mesh, split into two triangles each.  For an N^3-cell block this
produces 12 N^2 triangles, which is exactly the term the configuration-to-
model-input mapping of Section 5.8 assumes for the Objects variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.aabb import AABB, triangle_aabbs
from repro.geometry.mesh import RectilinearGrid, StructuredGrid, UniformGrid, UnstructuredHexMesh

__all__ = ["TriangleMesh", "quad_to_triangles", "external_faces"]

# Local point indices of the six quadrilateral faces of a hexahedron, using
# the same VTK_HEXAHEDRON point ordering produced by the mesh classes.  Faces
# are wound so their normals point out of the cell.
_HEX_FACES = np.array(
    [
        [0, 3, 2, 1],  # -z (bottom)
        [4, 5, 6, 7],  # +z (top)
        [0, 1, 5, 4],  # -y
        [3, 7, 6, 2],  # +y
        [0, 4, 7, 3],  # -x
        [1, 2, 6, 5],  # +x
    ],
    dtype=np.int64,
)


@dataclass
class TriangleMesh:
    """A triangle soup with optional per-vertex scalars.

    Attributes
    ----------
    vertices:
        ``(nv, 3)`` float coordinates.
    triangles:
        ``(nt, 3)`` integer vertex indices.
    scalars:
        Optional ``(nv,)`` per-vertex scalar used for color mapping.
    """

    vertices: np.ndarray
    triangles: np.ndarray
    scalars: np.ndarray | None = None
    _corners_cache: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=np.float64)
        self.triangles = np.asarray(self.triangles, dtype=np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise ValueError("vertices must have shape (n, 3)")
        if self.triangles.ndim != 2 or self.triangles.shape[1] != 3:
            raise ValueError("triangles must have shape (n, 3)")
        if self.triangles.size and (
            self.triangles.min() < 0 or self.triangles.max() >= len(self.vertices)
        ):
            raise IndexError("triangle connectivity references a missing vertex")
        if self.scalars is not None:
            self.scalars = np.asarray(self.scalars, dtype=np.float64)
            if len(self.scalars) != len(self.vertices):
                raise ValueError("scalars must have one value per vertex")

    @property
    def num_vertices(self) -> int:
        return self.vertices.shape[0]

    @property
    def num_triangles(self) -> int:
        return self.triangles.shape[0]

    @property
    def bounds(self) -> AABB:
        if self.num_vertices == 0:
            return AABB(np.zeros(3), np.zeros(3))
        return AABB(self.vertices.min(axis=0), self.vertices.max(axis=0))

    def corners(self) -> np.ndarray:
        """Per-triangle corner coordinates, shape ``(nt, 3, 3)``.

        The expansion is cached on first use (the geometry is treated as
        immutable after construction): the ray tracer's secondary stages issue
        many ``any_hit`` queries against the same mesh, and rebuilding the
        corner array per query dominated their per-call overhead.  Call
        :meth:`invalidate_caches` after mutating ``vertices``/``triangles``
        in place.
        """
        if self._corners_cache is None:
            self._corners_cache = self.vertices[self.triangles]
        return self._corners_cache

    def invalidate_caches(self) -> None:
        """Drop derived-geometry caches after an in-place mutation."""
        self._corners_cache = None

    def centroids(self) -> np.ndarray:
        """Per-triangle centroids."""
        return self.corners().mean(axis=1)

    def triangle_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-triangle AABB corners as two ``(nt, 3)`` arrays."""
        return triangle_aabbs(self.vertices, self.triangles)

    def normals(self) -> np.ndarray:
        """Unit geometric normals per triangle (zero for degenerate triangles)."""
        corners = self.corners()
        normal = np.cross(corners[:, 1] - corners[:, 0], corners[:, 2] - corners[:, 0])
        length = np.linalg.norm(normal, axis=1, keepdims=True)
        length[length == 0.0] = 1.0
        return normal / length

    def areas(self) -> np.ndarray:
        """Per-triangle areas."""
        corners = self.corners()
        cross = np.cross(corners[:, 1] - corners[:, 0], corners[:, 2] - corners[:, 0])
        return 0.5 * np.linalg.norm(cross, axis=1)

    def vertex_normals(self) -> np.ndarray:
        """Area-weighted per-vertex normals (used for smooth shading)."""
        corners = self.corners()
        face_normal = np.cross(corners[:, 1] - corners[:, 0], corners[:, 2] - corners[:, 0])
        accum = np.zeros_like(self.vertices)
        for corner in range(3):
            np.add.at(accum, self.triangles[:, corner], face_normal)
        length = np.linalg.norm(accum, axis=1, keepdims=True)
        length[length == 0.0] = 1.0
        return accum / length

    def concatenate(self, other: "TriangleMesh") -> "TriangleMesh":
        """Append another mesh, offsetting its connectivity."""
        vertices = np.concatenate([self.vertices, other.vertices])
        triangles = np.concatenate([self.triangles, other.triangles + self.num_vertices])
        scalars = None
        if self.scalars is not None and other.scalars is not None:
            scalars = np.concatenate([self.scalars, other.scalars])
        return TriangleMesh(vertices, triangles, scalars)


def quad_to_triangles(quads: np.ndarray) -> np.ndarray:
    """Split ``(n, 4)`` quadrilateral connectivity into ``(2n, 3)`` triangles.

    Each quad ``[a, b, c, d]`` becomes triangles ``[a, b, c]`` and ``[a, c, d]``,
    preserving winding.
    """
    quads = np.asarray(quads, dtype=np.int64)
    if quads.ndim != 2 or quads.shape[1] != 4:
        raise ValueError("quads must have shape (n, 4)")
    first = quads[:, [0, 1, 2]]
    second = quads[:, [0, 2, 3]]
    return np.concatenate([first, second], axis=0).reshape(-1, 3)


def _boundary_quads(connectivity: np.ndarray) -> np.ndarray:
    """Quadrilateral faces of a hex mesh that belong to exactly one cell."""
    faces = connectivity[:, _HEX_FACES]                    # (ncell, 6, 4)
    faces = faces.reshape(-1, 4)
    keys = np.sort(faces, axis=1)
    # Identify faces whose sorted vertex tuple is unique (boundary faces).
    order = np.lexsort(keys.T[::-1])
    sorted_keys = keys[order]
    is_new = np.ones(len(sorted_keys), dtype=bool)
    if len(sorted_keys) > 1:
        is_new[1:] = np.any(sorted_keys[1:] != sorted_keys[:-1], axis=1)
    group_ids = np.cumsum(is_new) - 1
    counts = np.bincount(group_ids)
    unique_mask_sorted = counts[group_ids] == 1
    unique_mask = np.empty(len(faces), dtype=bool)
    unique_mask[order] = unique_mask_sorted
    return faces[unique_mask]


def external_faces(
    mesh: UnstructuredHexMesh | UniformGrid | RectilinearGrid | StructuredGrid,
    scalar_field: str | None = None,
) -> TriangleMesh:
    """Extract the boundary surface of a hexahedral mesh as triangles.

    Parameters
    ----------
    mesh:
        An unstructured hex mesh or any structured grid (which is converted on
        the fly).
    scalar_field:
        Optional name of a point field on the mesh to carry onto the surface
        vertices; cell fields are averaged onto the points first.

    Returns
    -------
    TriangleMesh
        Boundary triangles referencing a compacted vertex array.
    """
    if isinstance(mesh, (UniformGrid, RectilinearGrid, StructuredGrid)):
        hex_mesh = UnstructuredHexMesh.from_structured(mesh)
    else:
        hex_mesh = mesh

    quads = _boundary_quads(hex_mesh.connectivity)
    triangles = quad_to_triangles(quads)

    # Compact to only the vertices referenced by the surface.
    used, inverse = np.unique(triangles.ravel(), return_inverse=True)
    compacted_triangles = inverse.reshape(-1, 3)
    vertices = hex_mesh.points()[used]

    scalars = None
    if scalar_field is not None:
        association, values = hex_mesh.field(scalar_field)
        if association == "point":
            scalars = np.asarray(values, dtype=np.float64)[used]
        else:
            point_values = _cell_to_point_average(hex_mesh, np.asarray(values, dtype=np.float64))
            scalars = point_values[used]
    return TriangleMesh(vertices, compacted_triangles, scalars)


def _cell_to_point_average(mesh: UnstructuredHexMesh, cell_values: np.ndarray) -> np.ndarray:
    """Average cell-centered values onto points (simple arithmetic mean)."""
    sums = np.zeros(mesh.num_points, dtype=np.float64)
    counts = np.zeros(mesh.num_points, dtype=np.float64)
    for corner in range(8):
        np.add.at(sums, mesh.connectivity[:, corner], cell_values)
        np.add.at(counts, mesh.connectivity[:, corner], 1.0)
    counts[counts == 0.0] = 1.0
    return sums / counts
