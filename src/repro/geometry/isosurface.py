"""Isosurface extraction via marching tetrahedra.

The ray-tracing study (Chapter II) renders isosurfaces of simulation fields
(Richtmyer-Meshkov density, Lead Telluride charge density).  The reproduction
extracts comparable triangle workloads from its synthetic fields with a
marching-tetrahedra contouring filter: every hexahedral cell of a structured
grid is decomposed into five tetrahedra and each tetrahedron is contoured
against the isovalue with the standard 16-case table.

The implementation is fully vectorized: case classification, table lookup,
and edge interpolation all operate on whole arrays of tetrahedra at once.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mesh import RectilinearGrid, StructuredGrid, UniformGrid
from repro.geometry.tetra import tetrahedralize_uniform_grid
from repro.geometry.triangles import TriangleMesh

__all__ = ["isosurface_marching_tets"]

# Tetrahedron edges as pairs of local vertex ids.
_TET_EDGES = np.array(
    [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]],
    dtype=np.int64,
)

# Marching-tetrahedra case table: for each of the 16 sign configurations
# (bit i set when vertex i is above the isovalue), up to two triangles are
# emitted, each listing three edge ids from ``_TET_EDGES``.  ``-1`` marks an
# unused triangle slot.
_CASE_TABLE = -np.ones((16, 2, 3), dtype=np.int64)
_CASE_TABLE[1, 0] = [0, 1, 2]
_CASE_TABLE[2, 0] = [0, 3, 4]
_CASE_TABLE[3] = [[1, 3, 4], [1, 4, 2]]
_CASE_TABLE[4, 0] = [1, 3, 5]
_CASE_TABLE[5] = [[0, 3, 5], [0, 5, 2]]
_CASE_TABLE[6] = [[0, 4, 5], [0, 5, 1]]
_CASE_TABLE[7, 0] = [2, 4, 5]
_CASE_TABLE[8, 0] = [2, 4, 5]
_CASE_TABLE[9] = [[0, 1, 5], [0, 5, 4]]
_CASE_TABLE[10] = [[0, 2, 5], [0, 5, 3]]
_CASE_TABLE[11, 0] = [1, 3, 5]
_CASE_TABLE[12] = [[1, 2, 4], [1, 4, 3]]
_CASE_TABLE[13, 0] = [0, 3, 4]
_CASE_TABLE[14, 0] = [0, 1, 2]


def isosurface_marching_tets(
    grid: UniformGrid | RectilinearGrid | StructuredGrid,
    field_name: str,
    isovalue: float,
) -> TriangleMesh:
    """Extract the ``field == isovalue`` surface of a structured grid.

    Parameters
    ----------
    grid:
        Any structured grid carrying a *point-centered* scalar field.
    field_name:
        Name of the point field to contour.
    isovalue:
        The contour value.

    Returns
    -------
    TriangleMesh
        Triangles whose vertices lie on grid edges where the field crosses
        the isovalue; the surface scalar is the isovalue at every vertex.
        The mesh is empty when the isovalue lies outside the field range.
    """
    if field_name not in grid.point_fields:
        raise KeyError(f"grid has no point field named {field_name!r}")
    tet_mesh = tetrahedralize_uniform_grid(grid)
    points = tet_mesh.points()
    scalars = np.asarray(grid.point_fields[field_name], dtype=np.float64)
    connectivity = tet_mesh.connectivity

    corner_scalars = scalars[connectivity]                      # (nt, 4)
    above = corner_scalars > isovalue
    case_index = (
        above[:, 0].astype(np.int64)
        | (above[:, 1] << 1)
        | (above[:, 2] << 2)
        | (above[:, 3] << 3)
    )
    active = (case_index != 0) & (case_index != 15)
    if not np.any(active):
        return TriangleMesh(np.zeros((0, 3)), np.zeros((0, 3), dtype=np.int64), np.zeros(0))

    active_conn = connectivity[active]
    active_scalars = corner_scalars[active]
    active_cases = case_index[active]

    # Interpolate all six edge-crossing points for every active tetrahedron.
    # Edges that do not actually cross are never referenced by the case table.
    edge_a = active_conn[:, _TET_EDGES[:, 0]]                   # (na, 6)
    edge_b = active_conn[:, _TET_EDGES[:, 1]]
    scalar_a = active_scalars[:, _TET_EDGES[:, 0]]
    scalar_b = active_scalars[:, _TET_EDGES[:, 1]]
    denominator = scalar_b - scalar_a
    safe = np.where(np.abs(denominator) < 1e-300, 1.0, denominator)
    t = np.clip((isovalue - scalar_a) / safe, 0.0, 1.0)
    edge_points = points[edge_a] + t[..., None] * (points[edge_b] - points[edge_a])  # (na, 6, 3)

    triangles_edges = _CASE_TABLE[active_cases]                 # (na, 2, 3)
    valid = triangles_edges[:, :, 0] >= 0                        # (na, 2)
    tet_ids, tri_slots = np.nonzero(valid)
    emitted_edges = triangles_edges[tet_ids, tri_slots]          # (ntri, 3)
    vertices = edge_points[tet_ids[:, None], emitted_edges]      # (ntri, 3, 3)

    flat_vertices = vertices.reshape(-1, 3)
    triangle_conn = np.arange(len(flat_vertices), dtype=np.int64).reshape(-1, 3)
    surface_scalars = np.full(len(flat_vertices), float(isovalue))
    return TriangleMesh(flat_vertices, triangle_conn, surface_scalars)
