"""Synthetic data-set generators standing in for the paper's production data.

The studies render fields from large production simulations -- Richtmyer-
Meshkov instability (LLNL), Enzo cosmology, Nek5000 thermal hydraulics --
which are not redistributable and far exceed a laptop's memory at their
original sizes.  These generators produce structured scalar fields with the
same qualitative character (turbulent mixing layers, clustered density blobs,
smooth plumes) at caller-chosen resolutions, so that isosurfaces and volume
renders exercise the same code paths with controllable object counts.

Every generator is deterministic for a given seed.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mesh import UniformGrid
from repro.util.rng import default_rng

__all__ = [
    "richtmyer_meshkov_like_field",
    "enzo_like_field",
    "nek5000_like_field",
    "make_named_dataset",
]


def _axis_grids(dims: tuple[int, int, int]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalized point coordinates in [0, 1]^3, shaped (nz, ny, nx)."""
    nx, ny, nz = dims
    x = np.linspace(0.0, 1.0, nx)
    y = np.linspace(0.0, 1.0, ny)
    z = np.linspace(0.0, 1.0, nz)
    zz, yy, xx = np.meshgrid(z, y, x, indexing="ij")
    return xx, yy, zz


def richtmyer_meshkov_like_field(
    dims: tuple[int, int, int], seed: int | None = None, modes: int = 6
) -> np.ndarray:
    """Mixing-layer density field reminiscent of a Richtmyer-Meshkov slice.

    A sharp density interface perturbed by a superposition of sinusoidal modes
    plus small-scale noise, producing a crinkled isosurface whose triangle
    count grows with resolution -- the property the ray-tracing study relies
    on.

    Returns the point-centered field flattened in C order (x fastest).
    """
    rng = default_rng(seed, "rm", dims)
    xx, yy, zz = _axis_grids(dims)
    interface = 0.5 * np.ones_like(xx)
    for mode in range(1, modes + 1):
        amplitude = 0.08 / mode
        phase_x, phase_y = rng.uniform(0.0, 2.0 * np.pi, size=2)
        interface += amplitude * np.sin(2.0 * np.pi * mode * xx + phase_x) * np.cos(
            2.0 * np.pi * mode * yy + phase_y
        )
    sharpness = 12.0
    density = 1.0 / (1.0 + np.exp(-sharpness * (zz - interface) * dims[2] ** 0.5))
    density += 0.02 * rng.standard_normal(density.shape)
    return density.ravel()


def enzo_like_field(
    dims: tuple[int, int, int], seed: int | None = None, num_blobs: int = 24
) -> np.ndarray:
    """Clustered-density field reminiscent of an Enzo cosmology snapshot.

    A superposition of anisotropic Gaussian blobs on a low background,
    giving volume renders with compact opaque regions.
    """
    rng = default_rng(seed, "enzo", dims)
    xx, yy, zz = _axis_grids(dims)
    density = np.full(xx.shape, 0.05)
    centers = rng.uniform(0.1, 0.9, size=(num_blobs, 3))
    widths = rng.uniform(0.03, 0.12, size=num_blobs)
    weights = rng.uniform(0.3, 1.0, size=num_blobs)
    for center, width, weight in zip(centers, widths, weights):
        r2 = (xx - center[0]) ** 2 + (yy - center[1]) ** 2 + (zz - center[2]) ** 2
        density += weight * np.exp(-r2 / (2.0 * width**2))
    return density.ravel()


def nek5000_like_field(dims: tuple[int, int, int], seed: int | None = None) -> np.ndarray:
    """Smooth thermal-plume field reminiscent of a Nek5000 temperature solution.

    A vertical temperature gradient with a rising warm plume and gentle
    vortical perturbations.
    """
    rng = default_rng(seed, "nek", dims)
    xx, yy, zz = _axis_grids(dims)
    plume = np.exp(-((xx - 0.5) ** 2 + (yy - 0.5) ** 2) / 0.05) * zz
    swirl = 0.1 * np.sin(4.0 * np.pi * xx + rng.uniform(0, 2 * np.pi)) * np.sin(
        4.0 * np.pi * yy + rng.uniform(0, 2 * np.pi)
    )
    temperature = 0.3 + 0.4 * zz + 0.5 * plume + swirl
    return temperature.ravel()


#: Mapping of study data-set names to (generator, canonical field name).
_GENERATORS = {
    "richtmyer-meshkov": (richtmyer_meshkov_like_field, "density"),
    "rm": (richtmyer_meshkov_like_field, "density"),
    "enzo": (enzo_like_field, "density"),
    "nek5000": (nek5000_like_field, "temperature"),
    "lead-telluride": (enzo_like_field, "charge_density"),
    "seismic": (nek5000_like_field, "wave_speed"),
}


def make_named_dataset(
    name: str,
    dims: tuple[int, int, int],
    seed: int | None = None,
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    spacing: tuple[float, float, float] | None = None,
) -> UniformGrid:
    """Create a uniform grid carrying a named synthetic field.

    Parameters
    ----------
    name:
        One of ``richtmyer-meshkov``/``rm``, ``enzo``, ``nek5000``,
        ``lead-telluride``, ``seismic`` (case-insensitive).
    dims:
        Points per axis.
    seed:
        Seed forwarded to the generator.
    origin, spacing:
        Grid placement; spacing defaults to ``1 / (dims - 1)`` so the grid
        spans the unit cube.

    Returns
    -------
    UniformGrid
        Grid with one point-centered scalar field named after the data set's
        physical quantity (``density``, ``temperature``, ...).
    """
    key = name.lower()
    if key not in _GENERATORS:
        raise KeyError(f"unknown data set {name!r}; choose from {sorted(_GENERATORS)}")
    generator, field_name = _GENERATORS[key]
    if spacing is None:
        spacing = tuple(1.0 / max(d - 1, 1) for d in dims)
    grid = UniformGrid(dims, origin=origin, spacing=spacing)
    grid.add_point_field(field_name, generator(dims, seed))
    return grid
