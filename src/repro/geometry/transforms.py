"""Camera and screen-space transforms.

Both object-order (rasterization, projected tetrahedra) and image-order
(ray tracing, volume ray casting) algorithms need the same two transforms:

* a **look-at / view** matrix taking world coordinates into camera space, and
* a **perspective projection** plus **viewport** transform taking camera space
  into pixel coordinates with a depth value.

The pinhole :class:`Camera` bundles those, produces primary ray origins and
directions for the image-order renderers, and transforms geometry into screen
space for the object-order renderers -- the "Screen Space Transformation"
phase of the Chapter III volume-rendering algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.aabb import AABB

__all__ = [
    "look_at_matrix",
    "perspective_matrix",
    "viewport_transform",
    "project_points",
    "Camera",
]


def _normalize(vector: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(vector)
    if norm == 0.0:
        raise ValueError("cannot normalize a zero vector")
    return vector / norm


def look_at_matrix(position: np.ndarray, look_at: np.ndarray, up: np.ndarray) -> np.ndarray:
    """Right-handed world-to-camera (view) matrix, 4x4 homogeneous."""
    position = np.asarray(position, dtype=np.float64)
    look_at = np.asarray(look_at, dtype=np.float64)
    up = np.asarray(up, dtype=np.float64)
    forward = _normalize(look_at - position)          # camera -z
    right = _normalize(np.cross(forward, up))
    true_up = np.cross(right, forward)
    view = np.eye(4)
    view[0, :3] = right
    view[1, :3] = true_up
    view[2, :3] = -forward
    view[:3, 3] = -view[:3, :3] @ position
    return view


def perspective_matrix(fov_y_degrees: float, aspect: float, near: float, far: float) -> np.ndarray:
    """OpenGL-style perspective projection matrix."""
    if near <= 0 or far <= near:
        raise ValueError("require 0 < near < far")
    if not 0 < fov_y_degrees < 180:
        raise ValueError("field of view must be in (0, 180) degrees")
    f = 1.0 / np.tan(np.radians(fov_y_degrees) / 2.0)
    proj = np.zeros((4, 4))
    proj[0, 0] = f / aspect
    proj[1, 1] = f
    proj[2, 2] = (far + near) / (near - far)
    proj[2, 3] = 2.0 * far * near / (near - far)
    proj[3, 2] = -1.0
    return proj


def viewport_transform(ndc: np.ndarray, width: int, height: int) -> np.ndarray:
    """Map normalized device coordinates ``[-1, 1]`` to pixel coordinates.

    Returns an ``(n, 3)`` array of ``(px, py, depth)`` where depth is the NDC
    z remapped to ``[0, 1]`` (0 = near plane).
    """
    ndc = np.asarray(ndc, dtype=np.float64)
    out = np.empty_like(ndc)
    out[:, 0] = (ndc[:, 0] + 1.0) * 0.5 * width
    out[:, 1] = (ndc[:, 1] + 1.0) * 0.5 * height
    out[:, 2] = (ndc[:, 2] + 1.0) * 0.5
    return out


def project_points(points: np.ndarray, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Apply a 4x4 homogeneous matrix to ``(n, 3)`` points.

    Returns ``(projected, w)`` where ``projected`` is the ``(n, 3)`` result of
    the perspective divide and ``w`` the clip-space w (positive in front of
    the camera for a standard projection chain).
    """
    points = np.asarray(points, dtype=np.float64)
    homogeneous = np.concatenate([points, np.ones((len(points), 1))], axis=1)
    clip = homogeneous @ matrix.T
    w = clip[:, 3]
    safe_w = np.where(np.abs(w) < 1e-300, np.copysign(1e-300, np.where(w == 0.0, 1.0, w)), w)
    return clip[:, :3] / safe_w[:, None], w


@dataclass
class Camera:
    """Pinhole camera.

    Parameters
    ----------
    position, look_at, up:
        Standard look-at specification.
    fov_y_degrees:
        Vertical field of view.
    width, height:
        Image resolution in pixels.
    near, far:
        Clip plane distances for the projection matrix.
    """

    position: np.ndarray = field(default_factory=lambda: np.array([0.0, 0.0, 5.0]))
    look_at: np.ndarray = field(default_factory=lambda: np.zeros(3))
    up: np.ndarray = field(default_factory=lambda: np.array([0.0, 1.0, 0.0]))
    fov_y_degrees: float = 45.0
    width: int = 256
    height: int = 256
    near: float = 0.01
    far: float = 1000.0

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=np.float64)
        self.look_at = np.asarray(self.look_at, dtype=np.float64)
        self.up = np.asarray(self.up, dtype=np.float64)
        if self.width < 1 or self.height < 1:
            raise ValueError("image dimensions must be positive")

    # -- matrices -------------------------------------------------------------
    @property
    def aspect(self) -> float:
        return self.width / self.height

    def view_matrix(self) -> np.ndarray:
        return look_at_matrix(self.position, self.look_at, self.up)

    def projection_matrix(self) -> np.ndarray:
        return perspective_matrix(self.fov_y_degrees, self.aspect, self.near, self.far)

    def view_projection_matrix(self) -> np.ndarray:
        return self.projection_matrix() @ self.view_matrix()

    # -- image-order: primary rays ----------------------------------------------
    def basis(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Camera basis vectors ``(right, up, forward)`` in world space."""
        forward = _normalize(self.look_at - self.position)
        right = _normalize(np.cross(forward, self.up))
        true_up = np.cross(right, forward)
        return right, true_up, forward

    def generate_rays(self, pixel_ids: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Primary ray origins and directions for the given pixel ids.

        Pixel ids index the framebuffer row-major (``py * width + px``); when
        omitted, rays are generated for every pixel.  Rays pass through pixel
        centers.  Returns ``(origins, directions)`` with directions normalized.
        """
        if pixel_ids is None:
            pixel_ids = np.arange(self.width * self.height, dtype=np.int64)
        pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
        px = (pixel_ids % self.width).astype(np.float64) + 0.5
        py = (pixel_ids // self.width).astype(np.float64) + 0.5

        right, true_up, forward = self.basis()
        tan_half = np.tan(np.radians(self.fov_y_degrees) / 2.0)
        # NDC in [-1, 1] with y up.
        ndc_x = (2.0 * px / self.width - 1.0) * tan_half * self.aspect
        ndc_y = (1.0 - 2.0 * py / self.height) * tan_half
        directions = (
            forward[None, :]
            + ndc_x[:, None] * right[None, :]
            + ndc_y[:, None] * true_up[None, :]
        )
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        origins = np.broadcast_to(self.position, directions.shape).copy()
        return origins, directions

    # -- object-order: screen-space projection -----------------------------------
    def world_to_screen(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project world points to ``(px, py, depth01)`` screen coordinates.

        Returns ``(screen, w)``; callers use ``w > 0`` to cull points behind
        the camera.
        """
        ndc, w = project_points(points, self.view_projection_matrix())
        return viewport_transform(ndc, self.width, self.height), w

    def depth_along_view(self, points: np.ndarray) -> np.ndarray:
        """Distance of points along the view direction (camera-space -z)."""
        points = np.asarray(points, dtype=np.float64)
        _, _, forward = self.basis()
        return (points - self.position) @ forward

    def visibility_distance(self, bounds: AABB) -> float:
        """Distance from the camera to a bounding box center.

        The one visibility-ordering formula behind every renderer's
        ``visibility_depth``: sort-last OVER compositing orders sub-images
        by this value.
        """
        return float(np.linalg.norm(bounds.center - self.position))

    # -- convenience constructors -------------------------------------------------
    @classmethod
    def framing_bounds(
        cls,
        bounds: AABB,
        width: int,
        height: int,
        *,
        azimuth_degrees: float = 30.0,
        elevation_degrees: float = 20.0,
        zoom: float = 1.0,
        fov_y_degrees: float = 45.0,
    ) -> "Camera":
        """Camera orbiting a bounding box so that it (roughly) fills the view.

        ``zoom`` > 1 moves the camera closer ("close" views in the study);
        ``zoom`` < 1 moves it away ("far"/zoomed-out views).
        """
        center = bounds.center
        radius = max(bounds.diagonal / 2.0, 1e-12)
        distance = radius / np.tan(np.radians(fov_y_degrees) / 2.0) / max(zoom, 1e-6)
        azimuth = np.radians(azimuth_degrees)
        elevation = np.radians(elevation_degrees)
        offset = np.array(
            [
                np.cos(elevation) * np.sin(azimuth),
                np.sin(elevation),
                np.cos(elevation) * np.cos(azimuth),
            ]
        )
        position = center + distance * offset
        near = max(distance - 2.5 * radius, distance * 1e-3)
        far = distance + 2.5 * radius
        return cls(
            position=position,
            look_at=center,
            up=np.array([0.0, 1.0, 0.0]),
            fov_y_degrees=fov_y_degrees,
            width=width,
            height=height,
            near=near,
            far=far,
        )
