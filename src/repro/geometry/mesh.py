"""Mesh data model: uniform, rectilinear, structured, and unstructured grids.

The in situ interface (Chapter IV, requirement R4) must support "multiple data
models, including uniform, rectilinear, and unstructured grids" because the
three proxy simulations each use a different one:

* Kripke  -- 3D **uniform** mesh,
* CloverLeaf3D -- 3D **rectilinear** mesh,
* LULESH -- 3D **unstructured hexahedral** mesh.

The unstructured volume renderer of Chapter III additionally needs
**tetrahedral** meshes produced by decomposing hexahedra.

All meshes expose

* ``num_points`` / ``num_cells``,
* ``points()`` returning ``(np, 3)`` vertex coordinates,
* ``bounds`` returning an :class:`repro.geometry.aabb.AABB`,
* ``point_fields`` / ``cell_fields`` dictionaries of numpy arrays, and
* ``cell_centers()``.

Fields are stored flat (C order, x fastest) which matches the index math used
by the structured volume renderer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.aabb import AABB

__all__ = [
    "Mesh",
    "UniformGrid",
    "RectilinearGrid",
    "StructuredGrid",
    "UnstructuredHexMesh",
    "UnstructuredTetMesh",
]


def _structured_cell_connectivity(dims: tuple[int, int, int]) -> np.ndarray:
    """Hexahedral connectivity (8 point ids per cell) of a structured grid.

    ``dims`` is the number of points per axis; cells number ``dims - 1`` per
    axis.  Point ids follow C order with x fastest.
    """
    nx, ny, nz = dims
    if nx < 2 or ny < 2 or nz < 2:
        raise ValueError("structured grids need at least two points per axis")
    cx, cy, cz = nx - 1, ny - 1, nz - 1
    k, j, i = np.meshgrid(np.arange(cz), np.arange(cy), np.arange(cx), indexing="ij")
    base = (i + j * nx + k * nx * ny).ravel()
    # VTK_HEXAHEDRON ordering: bottom quad counter-clockwise, then top quad.
    offsets = np.array(
        [
            0,
            1,
            1 + nx,
            nx,
            nx * ny,
            1 + nx * ny,
            1 + nx + nx * ny,
            nx + nx * ny,
        ],
        dtype=np.int64,
    )
    return base[:, None] + offsets[None, :]


class Mesh:
    """Base class carrying named point-centered and cell-centered fields."""

    def __init__(self) -> None:
        self.point_fields: dict[str, np.ndarray] = {}
        self.cell_fields: dict[str, np.ndarray] = {}

    # -- interface -------------------------------------------------------------
    @property
    def num_points(self) -> int:
        raise NotImplementedError

    @property
    def num_cells(self) -> int:
        raise NotImplementedError

    def points(self) -> np.ndarray:
        raise NotImplementedError

    def cell_centers(self) -> np.ndarray:
        raise NotImplementedError

    @property
    def bounds(self) -> AABB:
        pts = self.points()
        return AABB(pts.min(axis=0), pts.max(axis=0))

    # -- field management --------------------------------------------------------
    def add_point_field(self, name: str, values: np.ndarray) -> None:
        """Attach a point-centered scalar/vector field (leading dim = num_points)."""
        values = np.asarray(values)
        if len(values) != self.num_points:
            raise ValueError(
                f"point field {name!r} has {len(values)} entries, expected {self.num_points}"
            )
        self.point_fields[name] = values

    def add_cell_field(self, name: str, values: np.ndarray) -> None:
        """Attach a cell-centered scalar/vector field (leading dim = num_cells)."""
        values = np.asarray(values)
        if len(values) != self.num_cells:
            raise ValueError(
                f"cell field {name!r} has {len(values)} entries, expected {self.num_cells}"
            )
        self.cell_fields[name] = values

    def field(self, name: str) -> tuple[str, np.ndarray]:
        """Look a field up by name in either association.

        Returns ``(association, values)`` where association is ``"point"`` or
        ``"cell"``.
        """
        if name in self.point_fields:
            return "point", self.point_fields[name]
        if name in self.cell_fields:
            return "cell", self.cell_fields[name]
        raise KeyError(f"no field named {name!r}")


@dataclass
class _GridGeometry:
    """Shared point/cell bookkeeping for the three structured variants."""

    dims: tuple[int, int, int]

    @property
    def cell_dims(self) -> tuple[int, int, int]:
        return (self.dims[0] - 1, self.dims[1] - 1, self.dims[2] - 1)


class UniformGrid(Mesh):
    """Axis-aligned grid with constant spacing (Kripke's mesh type)."""

    def __init__(
        self,
        dims: tuple[int, int, int],
        origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
        spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
    ) -> None:
        super().__init__()
        if any(d < 2 for d in dims):
            raise ValueError("UniformGrid needs at least two points per axis")
        if any(s <= 0 for s in spacing):
            raise ValueError("UniformGrid spacing must be positive")
        self.dims = tuple(int(d) for d in dims)
        self.origin = np.asarray(origin, dtype=np.float64)
        self.spacing = np.asarray(spacing, dtype=np.float64)

    @property
    def cell_dims(self) -> tuple[int, int, int]:
        return (self.dims[0] - 1, self.dims[1] - 1, self.dims[2] - 1)

    @property
    def num_points(self) -> int:
        return self.dims[0] * self.dims[1] * self.dims[2]

    @property
    def num_cells(self) -> int:
        cx, cy, cz = self.cell_dims
        return cx * cy * cz

    def axis_coordinates(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-axis point coordinates."""
        return tuple(
            self.origin[axis] + self.spacing[axis] * np.arange(self.dims[axis])
            for axis in range(3)
        )

    def points(self) -> np.ndarray:
        x, y, z = self.axis_coordinates()
        zz, yy, xx = np.meshgrid(z, y, x, indexing="ij")
        return np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()])

    def cell_centers(self) -> np.ndarray:
        x, y, z = self.axis_coordinates()
        cx = 0.5 * (x[:-1] + x[1:])
        cy = 0.5 * (y[:-1] + y[1:])
        cz = 0.5 * (z[:-1] + z[1:])
        zz, yy, xx = np.meshgrid(cz, cy, cx, indexing="ij")
        return np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()])

    @property
    def bounds(self) -> AABB:
        high = self.origin + self.spacing * (np.asarray(self.dims) - 1)
        return AABB(self.origin.copy(), high)

    def cell_connectivity(self) -> np.ndarray:
        """Hexahedral (8 point ids per cell) connectivity."""
        return _structured_cell_connectivity(self.dims)

    def point_field_as_volume(self, name: str) -> np.ndarray:
        """Reshape a point field to ``(nz, ny, nx)`` for the volume renderer."""
        values = self.point_fields[name]
        nx, ny, nz = self.dims
        return np.asarray(values).reshape(nz, ny, nx)


class RectilinearGrid(Mesh):
    """Axis-aligned grid with per-axis coordinate arrays (CloverLeaf3D's type)."""

    def __init__(self, x: np.ndarray, y: np.ndarray, z: np.ndarray) -> None:
        super().__init__()
        self.x = np.asarray(x, dtype=np.float64)
        self.y = np.asarray(y, dtype=np.float64)
        self.z = np.asarray(z, dtype=np.float64)
        for name, coords in (("x", self.x), ("y", self.y), ("z", self.z)):
            if coords.ndim != 1 or len(coords) < 2:
                raise ValueError(f"{name} coordinates must be 1D with at least two entries")
            if not np.all(np.diff(coords) > 0):
                raise ValueError(f"{name} coordinates must be strictly increasing")
        self.dims = (len(self.x), len(self.y), len(self.z))

    @property
    def cell_dims(self) -> tuple[int, int, int]:
        return (self.dims[0] - 1, self.dims[1] - 1, self.dims[2] - 1)

    @property
    def num_points(self) -> int:
        return self.dims[0] * self.dims[1] * self.dims[2]

    @property
    def num_cells(self) -> int:
        cx, cy, cz = self.cell_dims
        return cx * cy * cz

    def points(self) -> np.ndarray:
        zz, yy, xx = np.meshgrid(self.z, self.y, self.x, indexing="ij")
        return np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()])

    def cell_centers(self) -> np.ndarray:
        cx = 0.5 * (self.x[:-1] + self.x[1:])
        cy = 0.5 * (self.y[:-1] + self.y[1:])
        cz = 0.5 * (self.z[:-1] + self.z[1:])
        zz, yy, xx = np.meshgrid(cz, cy, cx, indexing="ij")
        return np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()])

    @property
    def bounds(self) -> AABB:
        return AABB(
            np.array([self.x[0], self.y[0], self.z[0]]),
            np.array([self.x[-1], self.y[-1], self.z[-1]]),
        )

    def cell_connectivity(self) -> np.ndarray:
        return _structured_cell_connectivity(self.dims)

    def to_uniform_resampled(self) -> UniformGrid:
        """Resample onto a uniform grid with the same dims and bounds.

        The structured volume renderer assumes constant spacing; rectilinear
        data from CloverLeaf3D is resampled through this helper before volume
        rendering (nearest-point semantics for point fields).
        """
        nx, ny, nz = self.dims
        bounds = self.bounds
        spacing = bounds.extent / (np.asarray(self.dims) - 1)
        grid = UniformGrid((nx, ny, nz), origin=tuple(bounds.low), spacing=tuple(spacing))
        for name, values in self.point_fields.items():
            grid.add_point_field(name, np.asarray(values).copy())
        for name, values in self.cell_fields.items():
            grid.add_cell_field(name, np.asarray(values).copy())
        return grid


class StructuredGrid(Mesh):
    """Curvilinear structured grid: explicit points with implicit connectivity."""

    def __init__(self, dims: tuple[int, int, int], points: np.ndarray) -> None:
        super().__init__()
        self.dims = tuple(int(d) for d in dims)
        points = np.asarray(points, dtype=np.float64)
        expected = self.dims[0] * self.dims[1] * self.dims[2]
        if points.shape != (expected, 3):
            raise ValueError(f"points must have shape ({expected}, 3)")
        self._points = points

    @property
    def cell_dims(self) -> tuple[int, int, int]:
        return (self.dims[0] - 1, self.dims[1] - 1, self.dims[2] - 1)

    @property
    def num_points(self) -> int:
        return self._points.shape[0]

    @property
    def num_cells(self) -> int:
        cx, cy, cz = self.cell_dims
        return cx * cy * cz

    def points(self) -> np.ndarray:
        return self._points

    def cell_connectivity(self) -> np.ndarray:
        return _structured_cell_connectivity(self.dims)

    def cell_centers(self) -> np.ndarray:
        conn = self.cell_connectivity()
        return self._points[conn].mean(axis=1)


class UnstructuredHexMesh(Mesh):
    """Explicit hexahedral mesh (LULESH's mesh type)."""

    def __init__(self, points: np.ndarray, connectivity: np.ndarray) -> None:
        super().__init__()
        points = np.asarray(points, dtype=np.float64)
        connectivity = np.asarray(connectivity, dtype=np.int64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must have shape (n, 3)")
        if connectivity.ndim != 2 or connectivity.shape[1] != 8:
            raise ValueError("hex connectivity must have shape (n, 8)")
        if connectivity.size and (connectivity.min() < 0 or connectivity.max() >= len(points)):
            raise IndexError("hex connectivity references a missing point")
        self._points = points
        self.connectivity = connectivity

    @classmethod
    def from_structured(cls, grid: UniformGrid | RectilinearGrid | StructuredGrid) -> "UnstructuredHexMesh":
        """Explicitly materialise a structured grid as an unstructured hex mesh."""
        mesh = cls(grid.points(), grid.cell_connectivity())
        mesh.point_fields.update({k: np.asarray(v) for k, v in grid.point_fields.items()})
        mesh.cell_fields.update({k: np.asarray(v) for k, v in grid.cell_fields.items()})
        return mesh

    @property
    def num_points(self) -> int:
        return self._points.shape[0]

    @property
    def num_cells(self) -> int:
        return self.connectivity.shape[0]

    def points(self) -> np.ndarray:
        return self._points

    def cell_centers(self) -> np.ndarray:
        return self._points[self.connectivity].mean(axis=1)


class UnstructuredTetMesh(Mesh):
    """Explicit tetrahedral mesh consumed by the unstructured volume renderer."""

    def __init__(self, points: np.ndarray, connectivity: np.ndarray) -> None:
        super().__init__()
        points = np.asarray(points, dtype=np.float64)
        connectivity = np.asarray(connectivity, dtype=np.int64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must have shape (n, 3)")
        if connectivity.ndim != 2 or connectivity.shape[1] != 4:
            raise ValueError("tet connectivity must have shape (n, 4)")
        if connectivity.size and (connectivity.min() < 0 or connectivity.max() >= len(points)):
            raise IndexError("tet connectivity references a missing point")
        self._points = points
        self.connectivity = connectivity

    @property
    def num_points(self) -> int:
        return self._points.shape[0]

    @property
    def num_cells(self) -> int:
        return self.connectivity.shape[0]

    def points(self) -> np.ndarray:
        return self._points

    def cell_centers(self) -> np.ndarray:
        return self._points[self.connectivity].mean(axis=1)

    def cell_volumes(self) -> np.ndarray:
        """Signed volume of every tetrahedron (positive for right-handed cells)."""
        tets = self._points[self.connectivity]
        a = tets[:, 1] - tets[:, 0]
        b = tets[:, 2] - tets[:, 0]
        c = tets[:, 3] - tets[:, 0]
        return np.einsum("ij,ij->i", a, np.cross(b, c)) / 6.0
