"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs (which build a wheel) fail.  This ``setup.py``
enables the legacy ``pip install -e . --no-use-pep517`` path; all project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
