"""Packaging for the src/-layout ``repro`` distribution.

``repro`` is a namespace package (no top-level ``__init__.py``), so packages
are discovered with ``find_namespace_packages``.  All metadata lives here --
the offline development environment ships setuptools without ``wheel``, and a
plain ``setup.py`` keeps the legacy editable path working there:

    pip install -e . --no-use-pep517      # offline/wheel-less environments
    pip install -e .                      # anywhere else (CI uses this)

Either way the install maps the ``src/`` layout onto ``sys.path``, so neither
CI nor the README needs ``PYTHONPATH=src``.
"""

from setuptools import find_namespace_packages, setup

setup(
    name="repro-insitu-rendering-study",
    version="0.5.0",
    description=(
        "Reproduction of the Larsen et al. in situ rendering performance "
        "study: data-parallel renderers, sort-last compositing, and the "
        "performance-model corpus pipeline"
    ),
    package_dir={"": "src"},
    packages=find_namespace_packages(where="src"),
    python_requires=">=3.11",
    install_requires=["numpy"],
    extras_require={
        # scipy provides the non-negative least squares solver the paper-style
        # model fits use; tests exercise it, the core library degrades without it.
        "models": ["scipy"],
        # The optional accelerator back-end (CPU wheels are enough: the dpp
        # "jax" device registers lazily and only needs jax importable).
        "jax": ["jax"],
        "test": ["pytest", "hypothesis", "pytest-benchmark", "scipy"],
    },
)
