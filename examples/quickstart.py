"""Quickstart: render a synthetic data set three ways and fit a performance model.

Run with ``python examples/quickstart.py``.  The script

1. builds a small Richtmyer-Meshkov-like data set,
2. extracts an isosurface and renders it with the ray tracer and the
   rasterizer,
3. volume renders the same grid, saving all three images as PPM files, and
4. fits the volume-rendering performance model (Eq. 5.3) to a handful of
   renders at different image sizes and prints its coefficients and a
   prediction for a larger image.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Camera, isosurface_marching_tets, make_named_dataset
from repro.insitu.imageio import write_ppm
from repro.modeling.models import VolumeRenderingModel
from repro.rendering import (
    Rasterizer,
    RayTracer,
    RayTracerConfig,
    Scene,
    StructuredVolumeConfig,
    StructuredVolumeRenderer,
    Workload,
)


def main() -> None:
    # 1. A synthetic stand-in for the Richtmyer-Meshkov density field.
    grid = make_named_dataset("rm", (25, 25, 25), seed=7)
    print(f"data set: {grid.num_cells} cells, bounds diagonal {grid.bounds.diagonal:.2f}")

    # 2. Surface rendering: isosurface -> ray tracer and rasterizer.
    surface = isosurface_marching_tets(grid, "density", 0.5)
    scene = Scene(surface)
    camera = Camera.framing_bounds(surface.bounds, 160, 160)
    print(f"isosurface: {surface.num_triangles} triangles")

    ray_traced = RayTracer(scene, RayTracerConfig(workload=Workload.FULL)).render(camera)
    write_ppm("quickstart_raytraced.ppm", ray_traced.framebuffer)
    print(f"ray traced  in {ray_traced.total_seconds:.3f}s "
          f"(BVH build {ray_traced.phase_seconds['bvh_build']:.3f}s, "
          f"{ray_traced.features.active_pixels} active pixels)")

    rasterized = Rasterizer(scene).render(camera)
    write_ppm("quickstart_rasterized.ppm", rasterized.framebuffer)
    print(f"rasterized  in {rasterized.total_seconds:.3f}s "
          f"({rasterized.features.visible_objects} visible triangles, "
          f"{rasterized.features.pixels_per_triangle:.1f} pixels/triangle)")

    # 3. Volume rendering of the same grid.
    volume = StructuredVolumeRenderer(grid, "density", config=StructuredVolumeConfig(samples_in_depth=150))
    volume_result = volume.render(camera)
    write_ppm("quickstart_volume.ppm", volume_result.framebuffer)
    print(f"volume render in {volume_result.total_seconds:.3f}s "
          f"({volume_result.features.samples_per_ray:.0f} samples/ray)")

    # 4. Fit the Eq. 5.3 volume-rendering model to a few image sizes and predict a bigger one.
    features, times = [], []
    for size in (48, 64, 96, 128, 160):
        cam = Camera.framing_bounds(grid.bounds, size, size)
        result = StructuredVolumeRenderer(grid, "density", config=StructuredVolumeConfig(samples_in_depth=100)).render(cam)
        features.append(result.features)
        times.append(result.total_seconds)
    model = VolumeRenderingModel()
    model.fit(features, np.array(times))
    print("\nfitted volume-rendering model (T = c0*AP*CS + c1*AP*SPR + c2):")
    for name, value in model.coefficients.items():
        print(f"  {name} = {value:.3e}")
    print(f"  R^2 = {model.r_squared:.4f}")

    big_camera = Camera.framing_bounds(grid.bounds, 288, 288)
    big = StructuredVolumeRenderer(grid, "density", config=StructuredVolumeConfig(samples_in_depth=100))
    predicted = model.predict(features[-1].__class__(
        objects=grid.num_cells,
        active_pixels=int(features[-1].active_pixels * (288 / 160) ** 2),
        samples_per_ray=features[-1].samples_per_ray,
        cells_spanned=features[-1].cells_spanned,
    ))
    actual = big.render(big_camera).total_seconds
    print(f"\nprediction for a 288^2 image: {predicted:.3f}s   measured: {actual:.3f}s")


if __name__ == "__main__":
    main()
