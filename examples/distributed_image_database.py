"""Distributed in situ rendering with sort-last compositing plus an image-database sweep.

Run with ``python examples/distributed_image_database.py``.  The script
reproduces the workflow that motivates the paper's feasibility question:

1. a domain decomposed over simulated MPI ranks is rendered locally per rank,
2. the per-rank images are composited sort-last (Radix-k) into final images,
3. many camera angles are rendered to build a small Cinema-style image
   database, and
4. the measured per-frame cost is extrapolated with the fitted models to
   answer "how many images fit in a 60-second budget?".
"""

from __future__ import annotations

import numpy as np

from repro.compositing import Compositor
from repro.geometry import Camera
from repro.geometry.triangles import external_faces
from repro.insitu.imageio import write_ppm
from repro.modeling.feasibility import images_within_budget
from repro.modeling.study import StudyConfiguration, StudyHarness
from repro.rendering import RayTracer, RayTracerConfig, Scene, Workload
from repro.runtime import BlockDecomposition

NUM_TASKS = 8
CELLS_PER_TASK = 12
IMAGE_SIZE = 128
NUM_CAMERA_ANGLES = 6


def shell_field(points: np.ndarray) -> np.ndarray:
    """A blast-shell field continuous across the decomposed domain."""
    radius = np.linalg.norm(points - 0.2, axis=1)
    return np.exp(-((radius - 0.5) ** 2) / 0.02)


def main() -> None:
    decomposition = BlockDecomposition(NUM_TASKS, CELLS_PER_TASK)
    print(f"{NUM_TASKS} simulated ranks, {decomposition.total_cells} total cells")

    # Build each rank's surface once (the geometry does not change per camera).
    rank_scenes = []
    for rank in range(NUM_TASKS):
        grid = decomposition.block_grid_with_field(rank, "scalar", shell_field)
        surface = external_faces(grid, scalar_field="scalar")
        rank_scenes.append(Scene(surface))

    compositor = Compositor("radix-k")
    per_frame_seconds = []
    for angle_index in range(NUM_CAMERA_ANGLES):
        camera = Camera.framing_bounds(
            decomposition.global_bounds,
            IMAGE_SIZE,
            IMAGE_SIZE,
            azimuth_degrees=360.0 * angle_index / NUM_CAMERA_ANGLES,
            elevation_degrees=25.0,
        )
        framebuffers = []
        local_seconds = 0.0
        for scene in rank_scenes:
            tracer = RayTracer(scene, RayTracerConfig(workload=Workload.SHADING))
            result = tracer.render(camera)
            local_seconds = max(local_seconds, result.seconds_excluding("bvh_build"))
            framebuffers.append(result.framebuffer)
        composite = compositor.composite(framebuffers, mode="depth")
        per_frame_seconds.append(local_seconds + composite.total_seconds)
        path = write_ppm(f"image_database_{angle_index:03d}.ppm", composite.framebuffer)
        active_fraction = composite.average_active_pixels / composite.num_pixels
        print(
            f"angle {angle_index}: slowest rank {local_seconds:.3f}s, "
            f"compositing {composite.total_seconds * 1e3:.2f}ms "
            f"({composite.bytes_exchanged / 1e6:.1f} MB exchanged, "
            f"avg(AP) {active_fraction:.0%} of pixels run-length compressed) -> {path}"
        )

    print(f"\nmeasured mean frame cost: {np.mean(per_frame_seconds):.3f}s "
          f"(~{int(60.0 / np.mean(per_frame_seconds))} images per minute at this scale)")

    # Extrapolate with the fitted models: the Figure 14 question at paper scale.
    print("\nfitting the performance models (small sweep)...")
    corpus = StudyHarness(StudyConfiguration(samples_per_technique=8, seed=5)).run()
    models = corpus.fit_all_models()
    compositing_model = corpus.fit_compositing_model()
    points = images_within_budget(
        models,
        budget_seconds=60.0,
        num_tasks=32,
        cells_per_task=200,
        image_sizes=np.array([1024, 2048, 4096]),
        compositing_model=compositing_model,
    )
    print("\nimages renderable in 60 s (32 tasks of 200^3 cells):")
    for point in points:
        print(
            f"  {point.architecture:<10} {point.technique:<9} {point.image_size:>4}^2 : "
            f"{point.images_in_budget:>6} images ({point.seconds_per_image * 1e3:.1f} ms/image)"
        )


if __name__ == "__main__":
    main()
