"""End-to-end reproduction of the Chapter V modeling workflow.

Run with ``python examples/model_feasibility_study.py``.  The script

1. runs the study sweep (host-measured CPU experiments + synthesized GPU
   experiments at paper scale),
2. fits the six single-node models and the compositing model, printing their
   R^2 values and coefficients (Tables 12 and 17),
3. cross-validates each model (Table 13),
4. calibrates a Titan-like machine from a small sample and predicts a
   1024-task rendering (Table 15), and
5. answers the ray-tracing-versus-rasterization feasibility question
   (Figure 15).
"""

from __future__ import annotations

import numpy as np

from repro.machines import KernelCostModel
from repro.modeling import RenderingConfiguration, map_configuration_to_features
from repro.modeling.calibration import MachineCalibration, validate_large_scale_prediction
from repro.modeling.feasibility import raytracing_vs_rasterization
from repro.modeling.study import StudyConfiguration, StudyHarness


def main() -> None:
    print("running the study sweep (this renders a few dozen small images)...")
    corpus = StudyHarness(StudyConfiguration(samples_per_technique=10, seed=2016)).run()
    print(f"gathered {len(corpus.records)} rendering experiments "
          f"and {len(corpus.compositing_records)} compositing experiments\n")

    models = corpus.fit_all_models()
    print("model fits (R^2) and coefficients:")
    for (architecture, technique), model in sorted(models.items()):
        coefficients = ", ".join(f"{k}={v:.2e}" for k, v in model.coefficients.items())
        print(f"  {architecture:<10} {technique:<9} R^2={model.r_squared:.4f}  {coefficients}")

    print("\n3-fold cross-validation accuracy:")
    for (architecture, technique) in sorted(models):
        row = corpus.cross_validate(architecture, technique, k=3, seed=13).accuracy_row()
        print(f"  {architecture:<10} {technique:<9} within 50/25/10/5%: "
              f"{row['within_50']:.0f}/{row['within_25']:.0f}/{row['within_10']:.0f}/{row['within_5']:.0f}  "
              f"avg err {row['average_percent']:.1f}%")

    compositing = corpus.fit_compositing_model()
    print(f"\ncompositing model R^2 = {compositing.r_squared:.3f}")

    print("\nTitan-style calibration and large-scale prediction:")
    calibrator = MachineCalibration("gpu2-titan-k20", calibration_samples=10, seed=41)
    oracle = KernelCostModel("gpu2-titan-k20", seed=314)
    for technique in ("raytrace", "volume", "raster"):
        calibration = calibrator.calibrate(technique)
        config = RenderingConfiguration(technique, "gpu2-titan-k20", 1024, 252, 2048, 2048)
        synthetic = {"raytrace": "raytrace", "raster": "raster", "volume": "volume_structured"}[technique]
        measured = oracle.total(synthetic, map_configuration_to_features(config), include_build=False)
        row = validate_large_scale_prediction(calibration, config, measured)
        print(f"  {technique:<9} actual {row['actual_seconds']:.4f}s  predicted {row['predicted_seconds']:.4f}s  "
              f"({row['difference_percent']:+.1f}%, {int(row['sample_points'])} calibration points)")

    print("\nray tracing vs rasterization (ratio > 1 means ray tracing wins):")
    heat = raytracing_vs_rasterization(
        models[("gpu1-k40m", "raytrace")],
        models[("gpu1-k40m", "raster")],
        "gpu1-k40m",
        image_sizes=np.array([384, 1024, 1920, 4096]),
        data_sizes=np.array([100, 300, 500]),
    )
    header = "           " + "".join(f"{size:>8}^2" for size in heat["image_sizes"])
    print(header)
    for row, cells in enumerate(heat["data_sizes"]):
        values = "".join(f"{heat['ratio'][row, column]:>10.2f}" for column in range(len(heat["image_sizes"])))
        print(f"  {cells:>5}^3 {values}")


if __name__ == "__main__":
    main()
