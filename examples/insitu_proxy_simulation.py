"""In situ rendering of the three proxy simulations through the Strawman interface.

Run with ``python examples/insitu_proxy_simulation.py``.  Each proxy app
(LULESH-, Kripke-, and CloverLeaf3D-like) is advanced for a few cycles; every
cycle its state is described with the mesh blueprint, published to Strawman,
and rendered, exactly following the integration pattern of Chapter IV.  The
section markers (``# [lulesh-data]`` etc.) delimit the integration code whose
line counts the Table 10 benchmark reports.
"""

from __future__ import annotations

import numpy as np

from repro.insitu import ConduitNode, Strawman, StrawmanOptions
from repro.simulations import CloverleafProxy, KripkeProxy, LuleshProxy

CYCLES = 3
IMAGE_SIZE = 160


def describe_lulesh(simulation: LuleshProxy) -> ConduitNode:
    """Describe the LULESH-like state (explicit coordinates, hex topology, element energy)."""
    mesh = simulation.mesh()
    points = mesh.points()
    # [lulesh-data]
    data = ConduitNode()
    data["state/time"] = simulation.time
    data["state/cycle"] = simulation.cycle
    data["coords/type"] = "explicit"
    data.fetch("coords/values/x").set_external(points[:, 0])
    data.fetch("coords/values/y").set_external(points[:, 1])
    data.fetch("coords/values/z").set_external(points[:, 2])
    data["topology/type"] = "unstructured"
    data["topology/elements/shape"] = "hexs"
    data.fetch("topology/elements/connectivity").set_external(mesh.connectivity)
    data["fields/e/association"] = "element"
    data.fetch("fields/e/values").set_external(mesh.cell_fields["e"])
    # [end]
    return data


def describe_kripke(simulation: KripkeProxy) -> ConduitNode:
    """Describe the Kripke-like state (uniform coordinates, vertex scalar flux)."""
    grid = simulation.mesh()
    # [kripke-data]
    data = ConduitNode()
    data["state/cycle"] = simulation.cycle
    data["coords/type"] = "uniform"
    data["coords/dims"] = np.asarray(grid.dims, dtype=np.int64)
    data["coords/origin"] = np.asarray(grid.origin)
    data["coords/spacing"] = np.asarray(grid.spacing)
    data["topology/type"] = "structured"
    data["fields/phi_point/association"] = "vertex"
    data.fetch("fields/phi_point/values").set_external(grid.point_fields["phi_point"])
    # [end]
    return data


def describe_cloverleaf(simulation: CloverleafProxy) -> ConduitNode:
    """Describe the CloverLeaf3D-like state (rectilinear coordinates, vertex density)."""
    grid = simulation.mesh()
    # [cloverleaf-data]
    data = ConduitNode()
    data["state/cycle"] = simulation.cycle
    data["coords/type"] = "rectilinear"
    data.fetch("coords/values/x").set_external(grid.x)
    data.fetch("coords/values/y").set_external(grid.y)
    data.fetch("coords/values/z").set_external(grid.z)
    data["topology/type"] = "structured"
    data["fields/density_point/association"] = "vertex"
    data.fetch("fields/density_point/values").set_external(grid.point_fields["density_point"])
    # [end]
    return data


def build_actions(variable: str, renderer: str, cycle: int, prefix: str) -> ConduitNode:
    """The AddPlot / DrawPlots / SaveImage action list of the paper's listings."""
    # [action-description]
    actions = ConduitNode()
    add = actions.append()
    add["action"] = "AddPlot"
    add["var"] = variable
    add["renderer"] = renderer
    draw = actions.append()
    draw["action"] = "DrawPlots"
    save = actions.append()
    save["action"] = "SaveImage"
    save["fileName"] = f"{prefix}_{cycle:04d}"
    save["format"] = "ppm"
    save["width"] = IMAGE_SIZE
    save["height"] = IMAGE_SIZE
    # [end]
    return actions


def run_in_situ(name: str, simulation, describe, renderer: str) -> None:
    """Advance a proxy and render every cycle through Strawman."""
    # [strawman-api]
    strawman = Strawman()
    options = StrawmanOptions(num_ranks=1, output_directory="insitu_output")
    strawman.open(options)
    for _ in range(CYCLES):
        simulation.advance(1)
        strawman.publish(describe(simulation))
        record = strawman.execute(build_actions(simulation.primary_field, renderer, simulation.cycle, name))
    strawman.close()
    # [end]
    print(
        f"{name:<11} {CYCLES} cycles: "
        f"sim {simulation.total_step_seconds:.3f}s, "
        f"vis {sum(r.total_seconds for r in strawman.history) if strawman.history else record.total_seconds:.3f}s, "
        f"compositing {sum(r.bytes_exchanged for r in strawman.history) / 1e6:.2f} MB exchanged, "
        f"last image {record.saved_files[-1]}"
    )


def main() -> None:
    run_in_situ("lulesh", LuleshProxy(10, seed=1), describe_lulesh, renderer="raytrace")
    run_in_situ("kripke", KripkeProxy(12, seed=2), describe_kripke, renderer="volume")
    run_in_situ("cloverleaf", CloverleafProxy(12, seed=3), describe_cloverleaf, renderer="raster")


if __name__ == "__main__":
    main()
